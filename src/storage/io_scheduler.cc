#include "src/storage/io_scheduler.h"

#include "src/obs/obs.h"
#include "src/util/check.h"

namespace artc::storage {

CfqScheduler::CfqScheduler(sim::Simulation* simulation, BlockDevice* device, CfqParams params)
    : sim_(simulation), device_(device), params_(params) {
  ARTC_OBS_IF_ENABLED {
    obs::DefaultTracer().SetTrackName(obs::ClockDomain::kVirtual,
                                      obs::kIoSchedulerTrack, "io-scheduler");
  }
}

CfqScheduler::Queue* CfqScheduler::FindQueue(uint32_t issuer) {
  auto it = queues_.find(issuer);
  return it == queues_.end() ? nullptr : &it->second;
}

void CfqScheduler::Submit(BlockRequest req) {
  if (req.issuer == kAsyncIssuer) {
    async_.push_back(std::move(req));
    Dispatch();
    return;
  }
  uint32_t issuer = req.issuer;
  Queue& q = queues_[issuer];
  bool was_empty = q.requests.empty();
  q.requests.push_back(std::move(req));
  if (was_empty) {
    bool in_rr = false;
    for (uint32_t id : rr_) {
      if (id == issuer) {
        in_rr = true;
        break;
      }
    }
    if (!in_rr && !(has_active_ && active_ == issuer)) {
      rr_.push_back(issuer);
    }
  }
  // A new request from the anticipated context cancels the idle timer.
  if (has_active_ && active_ == issuer && idle_timer_ != 0) {
    CancelIdleTimer();
  }
  Dispatch();
}

void CfqScheduler::CancelIdleTimer() {
  if (idle_timer_ != 0) {
    sim_->CancelCallback(idle_timer_);
    idle_timer_ = 0;
  }
}

void CfqScheduler::StartIdleTimer() {
  ARTC_CHECK(idle_timer_ == 0);
  TimeNs deadline = sim_->Now() + params_.slice_idle;
  if (deadline > slice_end_) {
    deadline = slice_end_;
  }
  if (deadline <= sim_->Now()) {
    SwitchQueue();
    Dispatch();
    return;
  }
  idle_timer_ = sim_->ScheduleCallback(deadline, [this] {
    idle_timer_ = 0;
    SwitchQueue();
    Dispatch();
  });
}

void CfqScheduler::SwitchQueue() {
  CancelIdleTimer();
  if (has_active_) {
    Queue* q = FindQueue(active_);
    if (q != nullptr && !q->requests.empty()) {
      rr_.push_back(active_);
    }
    has_active_ = false;
  }
  if (!rr_.empty()) {
    active_ = rr_.front();
    rr_.pop_front();
    has_active_ = true;
    slice_end_ = sim_->Now() + params_.slice_sync;
    context_switches_++;
    ARTC_OBS_COUNT("cfq.context_switches", 1);
  }
}

void CfqScheduler::SubmitToDevice(BlockRequest req, uint32_t issuer) {
  auto done = std::move(req.done);
  [[maybe_unused]] TimeNs dispatch_start = sim_->Now();
  req.done = [this, issuer, dispatch_start, done = std::move(done)] {
    ARTC_OBS_IF_ENABLED {
      obs::DefaultTracer().CompleteSpan(
          obs::ClockDomain::kVirtual, obs::kIoSchedulerTrack, "storage",
          issuer == kAsyncIssuer ? "dispatch_async" : "dispatch",
          dispatch_start, sim_->Now() - dispatch_start, "issuer",
          static_cast<int64_t>(issuer));
    }
    done();
    OnComplete(issuer);
  };
  device_busy_ = true;
  device_->Submit(std::move(req));
}

void CfqScheduler::Dispatch() {
  if (device_busy_) {
    return;
  }
  // Expire the slice if the active context has exceeded it.
  if (has_active_ && sim_->Now() >= slice_end_) {
    SwitchQueue();
  }
  if (!has_active_ && !rr_.empty()) {
    SwitchQueue();
  }

  if (has_active_) {
    Queue* q = FindQueue(active_);
    if (q != nullptr && !q->requests.empty()) {
      CancelIdleTimer();
      BlockRequest req = std::move(q->requests.front());
      q->requests.pop_front();
      uint32_t issuer = req.issuer;
      SubmitToDevice(std::move(req), issuer);
      return;
    }
    // Active queue is dry: anticipate (idle) unless the slice already ended.
    if (sim_->Now() < slice_end_) {
      if (idle_timer_ == 0) {
        // Serve async I/O opportunistically only if nothing sync is waiting
        // anywhere (idling is the whole point of anticipation).
        if (rr_.empty() && !async_.empty()) {
          BlockRequest req = std::move(async_.front());
          async_.pop_front();
          SubmitToDevice(std::move(req), kAsyncIssuer);
          return;
        }
        StartIdleTimer();
      }
      return;
    }
    SwitchQueue();
    Dispatch();
    return;
  }

  // No sync context is busy: drain async I/O.
  if (!async_.empty()) {
    BlockRequest req = std::move(async_.front());
    async_.pop_front();
    SubmitToDevice(std::move(req), kAsyncIssuer);
  }
}

void CfqScheduler::OnComplete(uint32_t issuer) {
  (void)issuer;
  device_busy_ = false;
  Dispatch();
}

}  // namespace artc::storage

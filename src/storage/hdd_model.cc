#include "src/storage/hdd_model.h"

#include <cmath>
#include <cstdlib>

#include "src/obs/obs.h"
#include "src/util/check.h"

namespace artc::storage {

HddModel::HddModel(sim::Simulation* simulation, HddParams params)
    : sim_(simulation), params_(params) {
  double bytes_per_rev = params_.bandwidth_bytes_per_sec *
                         (static_cast<double>(params_.rotation_period) / kNsPerSec);
  blocks_per_track_ = static_cast<uint64_t>(bytes_per_rev / kBlockSize);
  ARTC_CHECK(blocks_per_track_ > 0);
}

TimeNs HddModel::SeekTime(uint64_t head, uint64_t lba) const {
  if (lba == head) {
    return 0;
  }
  uint64_t distance = lba > head ? lba - head : head - lba;
  if (distance <= params_.near_threshold) {
    return params_.settle;
  }
  double frac = static_cast<double>(distance) / static_cast<double>(params_.capacity_blocks);
  if (frac > 1.0) {
    frac = 1.0;
  }
  return params_.seek_min +
         static_cast<TimeNs>(std::sqrt(frac) *
                             static_cast<double>(params_.seek_max - params_.seek_min));
}

double HddModel::BlockAngle(uint64_t lba) const {
  return static_cast<double>(lba % blocks_per_track_) /
         static_cast<double>(blocks_per_track_);
}

double HddModel::PlatterAngle(TimeNs t) const {
  TimeNs within = t % params_.rotation_period;
  return static_cast<double>(within) / static_cast<double>(params_.rotation_period);
}

TimeNs HddModel::ServiceTime(TimeNs now, uint64_t head, uint64_t lba,
                             uint32_t nblocks) const {
  TimeNs positioning = 0;
  if (lba != head) {
    TimeNs seek = SeekTime(head, lba);
    // Rotational latency: wait for the target block to come under the head
    // after the arm arrives.
    double arrive = PlatterAngle(now + seek);
    double target = BlockAngle(lba);
    double wait = target - arrive;
    if (wait < 0) {
      wait += 1.0;
    }
    positioning = seek + static_cast<TimeNs>(
                             wait * static_cast<double>(params_.rotation_period));
  }
  double bytes = static_cast<double>(nblocks) * kBlockSize;
  TimeNs transfer = static_cast<TimeNs>(bytes / params_.bandwidth_bytes_per_sec * kNsPerSec);
  return positioning + transfer;
}

void HddModel::Submit(BlockRequest req) {
  ARTC_CHECK(req.done != nullptr);
  ARTC_CHECK(req.lba + req.nblocks <= params_.capacity_blocks);
  pending_.push_back(std::move(req));
  ARTC_OBS_OBSERVE("hdd.queue_depth", pending_.size() + (busy_ ? 1 : 0));
  if (!busy_) {
    StartNext();
  }
}

void HddModel::StartNext() {
  if (pending_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  // Native command queuing: pick the pending request with the lowest total
  // positioning cost (seek + rotation) from the current head position.
  TimeNs now = sim_->Now();
  size_t best = 0;
  TimeNs best_cost = INT64_MAX;
  for (size_t i = 0; i < pending_.size(); ++i) {
    TimeNs cost = ServiceTime(now, head_, pending_[i].lba, 0);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  BlockRequest req = std::move(pending_[best]);
  pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(best));
  ARTC_OBS_OBSERVE("hdd.seek_distance_blocks",
                   req.lba > head_ ? req.lba - head_ : head_ - req.lba);
  TimeNs t = ServiceTime(now, head_, req.lba, req.nblocks);
  total_positioning_ += ServiceTime(now, head_, req.lba, 0);
  serviced_++;
  head_ = req.lba + req.nblocks;
  auto done = std::move(req.done);
  sim_->ScheduleCallback(now + t, [this, done = std::move(done)] {
    done();
    StartNext();
  });
}

}  // namespace artc::storage

// I/O schedulers sitting between the page cache and a block device.
//
// NoopScheduler passes requests straight through (the device's own queue
// policy — NCQ on the HDD model — does any reordering).
//
// CfqScheduler is a completely-fair-queuing-style anticipatory scheduler:
// each I/O context (simulated thread) gets a queue; the active queue is
// serviced exclusively for a time slice (`slice_sync`), and when it runs dry
// the scheduler *idles* for up to `slice_idle`, anticipating another request
// from the same context, before switching. This reproduces the efficiency/
// fairness trade-off studied in Fig. 5(d) and Fig. 6 of the paper.
#ifndef SRC_STORAGE_IO_SCHEDULER_H_
#define SRC_STORAGE_IO_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "src/storage/block_device.h"

namespace artc::storage {

class IoScheduler {
 public:
  virtual ~IoScheduler() = default;
  virtual void Submit(BlockRequest req) = 0;
};

class NoopScheduler : public IoScheduler {
 public:
  explicit NoopScheduler(BlockDevice* device) : device_(device) {}
  void Submit(BlockRequest req) override { device_->Submit(std::move(req)); }

 private:
  BlockDevice* device_;
};

struct CfqParams {
  TimeNs slice_sync = Ms(100);  // exclusive service slice per context
  TimeNs slice_idle = Ms(4);    // anticipation window when the queue runs dry
  // Async (write-back/read-ahead) I/O never gets anticipation and is
  // dispatched when no sync context is active or between slices.
};

class CfqScheduler : public IoScheduler {
 public:
  CfqScheduler(sim::Simulation* simulation, BlockDevice* device, CfqParams params);

  void Submit(BlockRequest req) override;

  // Diagnostics: number of active-context switches performed.
  uint64_t ContextSwitches() const { return context_switches_; }

 private:
  struct Queue {
    std::deque<BlockRequest> requests;
  };

  void Dispatch();                 // dispatch next request if device idle
  // Hands one request to the device, wrapping its completion to re-enter the
  // scheduler (and, when tracing, to emit the dispatch span on the
  // io-scheduler pseudo-track).
  void SubmitToDevice(BlockRequest req, uint32_t issuer);
  void OnComplete(uint32_t issuer);
  void SwitchQueue();              // rotate to the next busy context
  void StartIdleTimer();
  void CancelIdleTimer();
  Queue* FindQueue(uint32_t issuer);

  sim::Simulation* sim_;
  BlockDevice* device_;
  CfqParams params_;

  std::map<uint32_t, Queue> queues_;     // sync contexts, keyed by issuer
  std::deque<uint32_t> rr_;              // round-robin order of busy contexts
  std::deque<BlockRequest> async_;       // non-anticipated I/O

  uint32_t active_ = kAsyncIssuer;       // context holding the slice
  bool has_active_ = false;
  TimeNs slice_end_ = 0;
  bool device_busy_ = false;
  uint64_t idle_timer_ = 0;              // callback id, 0 if none
  uint64_t context_switches_ = 0;
};

}  // namespace artc::storage

#endif  // SRC_STORAGE_IO_SCHEDULER_H_

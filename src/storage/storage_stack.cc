#include "src/storage/storage_stack.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/storage/raid0.h"
#include "src/util/check.h"

namespace artc::storage {

StorageConfig MakeNamedConfig(const std::string& name) {
  StorageConfig c;
  c.name = name;
  if (name == "hdd") {
    return c;
  }
  if (name == "raid0") {
    c.raid_members = 2;
    return c;
  }
  if (name == "ssd") {
    c.device = DeviceKind::kSsd;
    return c;
  }
  if (name == "smallcache") {
    // 1.5 GB vs the default 1 GB is not much of a squeeze; the paper pinned
    // memory to shrink a 4 GB cache to 1.5 GB. We scale the same ~2.7x ratio
    // down so experiments stay fast: default 1 GB -> small 384 MB.
    c.cache.capacity_blocks = 98304;
    return c;
  }
  if (name == "bigcache") {
    c.cache.capacity_blocks = 1048576;  // 4 GB
    return c;
  }
  if (name == "cfq-1ms") {
    c.scheduler = SchedulerKind::kCfq;
    c.cfq.slice_sync = Ms(1);
    return c;
  }
  if (name == "cfq-100ms") {
    c.scheduler = SchedulerKind::kCfq;
    c.cfq.slice_sync = Ms(100);
    return c;
  }
  ARTC_CHECK_MSG(false, "unknown storage config '%s'", name.c_str());
  return c;
}

TimeNs MinDeviceLatencyNs(const StorageConfig& config) {
  // RAID-0 is as fast as its fastest member, and members are homogeneous, so
  // the member minimum is the array minimum.
  if (config.device == DeviceKind::kSsd) {
    return std::min(config.ssd.read_latency, config.ssd.write_latency);
  }
  return config.hdd.settle;
}

StorageStack::StorageStack(sim::Simulation* simulation, const StorageConfig& config)
    : sim_(simulation), config_(config), inflight_cv_(simulation) {
  auto make_device = [&]() -> std::unique_ptr<BlockDevice> {
    if (config_.device == DeviceKind::kSsd) {
      return std::make_unique<SsdModel>(sim_, config_.ssd);
    }
    return std::make_unique<HddModel>(sim_, config_.hdd);
  };
  if (config_.raid_members > 1) {
    std::vector<std::unique_ptr<BlockDevice>> members;
    members.reserve(config_.raid_members);
    for (uint32_t i = 0; i < config_.raid_members; ++i) {
      members.push_back(make_device());
    }
    top_device_ = std::make_unique<Raid0>(std::move(members), config_.raid_chunk_blocks);
  } else {
    top_device_ = make_device();
  }
  if (config_.scheduler == SchedulerKind::kCfq) {
    scheduler_ = std::make_unique<CfqScheduler>(sim_, top_device_.get(), config_.cfq);
  } else {
    scheduler_ = std::make_unique<NoopScheduler>(top_device_.get());
  }
  cache_ = std::make_unique<PageCache>(sim_, scheduler_.get(), config_.cache);
}

StorageStack::~StorageStack() = default;

void StorageStack::AccountService(TimeNs dt, ServiceCat cat) {
  if (dt <= 0) {
    return;
  }
  const sim::SimThreadId t = sim_->CurrentThread();
  if (t != sim::kInvalidThread) {
    const uint32_t shard = sim::ShardOfThread(t);
    if (bound_shard_ == UINT32_MAX) {
      bound_shard_ = shard;
    }
    ARTC_CHECK_MSG(shard == bound_shard_,
                   "StorageStack used from shard %u but bound to shard %u",
                   shard, bound_shard_);
    const uint32_t local = sim::LocalIndexOfThread(t);
    if (service_ns_by_thread_.size() <= local) {
      service_ns_by_thread_.resize(local + 1, 0);
    }
    service_ns_by_thread_[local] += dt;
  }
  switch (cat) {
    case ServiceCat::kCache:
      service_cache_ns_ += dt;
      break;
    case ServiceCat::kMediaRead:
      service_media_read_ns_ += dt;
      break;
    case ServiceCat::kMediaWrite:
      service_media_write_ns_ += dt;
      break;
    case ServiceCat::kWriteback:
      service_writeback_ns_ += dt;
      break;
  }
}

TimeNs StorageStack::ServiceNsForCurrentThread() const {
  const sim::SimThreadId t = sim_->CurrentThread();
  if (t == sim::kInvalidThread) {
    return 0;
  }
  const uint32_t local = sim::LocalIndexOfThread(t);
  return local < service_ns_by_thread_.size() ? service_ns_by_thread_[local] : 0;
}

void StorageStack::BlockingIo(uint64_t lba, uint32_t nblocks, bool is_write,
                              uint32_t issuer, ServiceCat cat) {
  const TimeNs t0 = sim_->Now();
  bool done = false;
  sim::SimCondVar cv(sim_);
  BlockRequest req;
  req.lba = lba;
  req.nblocks = nblocks;
  req.is_write = is_write;
  req.issuer = issuer;
  req.done = [&done, &cv] {
    done = true;
    cv.NotifyAll();
  };
  ARTC_OBS_GAUGE_ADD("storage.inflight_requests", 1);
  ARTC_OBS_OBSERVE("storage.request_blocks", nblocks);
  scheduler_->Submit(std::move(req));
  while (!done) {
    cv.Wait();
  }
  ARTC_OBS_GAUGE_ADD("storage.inflight_requests", -1);
  AccountService(sim_->Now() - t0, cat);
  if (is_write) {
    media_write_blocks_ += nblocks;
    ARTC_OBS_COUNT("storage.media_write_blocks", nblocks);
  } else {
    media_read_blocks_ += nblocks;
    ARTC_OBS_COUNT("storage.media_read_blocks", nblocks);
  }
}

void StorageStack::Read(uint64_t lba, uint32_t nblocks, bool sequential_hint) {
  uint32_t issuer = sim_->CurrentThread();
  uint64_t end = lba + nblocks;
  uint64_t b = lba;
  uint32_t hit_run = 0;
  while (b < end) {
    if (cache_->Resident(b, 1)) {
      cache_->Touch(b, 1);
      hit_run++;
      b++;
      continue;
    }
    if (inflight_reads_.count(b) != 0) {
      // Another thread is already fetching this block; waiting on its I/O
      // is still time the media serves this reader.
      const TimeNs w0 = sim_->Now();
      while (inflight_reads_.count(b) != 0) {
        inflight_cv_.Wait();
      }
      AccountService(sim_->Now() - w0, ServiceCat::kMediaRead);
      continue;  // re-check residency
    }
    // Find the contiguous miss run within the request.
    uint64_t miss_end = b + 1;
    while (miss_end < end && !cache_->Resident(miss_end, 1) &&
           inflight_reads_.count(miss_end) == 0) {
      miss_end++;
    }
    uint32_t fetch = static_cast<uint32_t>(miss_end - b);
    if (sequential_hint) {
      // Extend with read-ahead past the request, stopping at resident or
      // already-inflight blocks and the device capacity.
      uint64_t ra_end = b + fetch + cache_->params().readahead_blocks;
      ra_end = std::min(ra_end, top_device_->CapacityBlocks());
      while (b + fetch < ra_end && !cache_->Resident(b + fetch, 1) &&
             inflight_reads_.count(b + fetch) == 0) {
        fetch++;
      }
    }
    cache_->CountMiss(fetch);
    for (uint64_t i = b; i < b + fetch; ++i) {
      inflight_reads_.insert(i);
    }
    BlockingIo(b, fetch, /*is_write=*/false, issuer, ServiceCat::kMediaRead);
    cache_->InsertClean(b, fetch);
    for (uint64_t i = b; i < b + fetch; ++i) {
      inflight_reads_.erase(i);
    }
    inflight_cv_.NotifyAll();
    WriteBlocksOut(cache_->EvictToCapacity(), kAsyncIssuer, ServiceCat::kWriteback);
    b += std::min<uint64_t>(fetch, miss_end - b);
  }
  if (hit_run > 0) {
    cache_->CountHit(hit_run);
    sim_->Sleep(cache_->params().hit_cost * hit_run);
    AccountService(cache_->params().hit_cost * hit_run, ServiceCat::kCache);
  }
}

void StorageStack::Write(uint64_t lba, uint32_t nblocks) {
  cache_->InsertDirty(lba, nblocks);
  sim_->Sleep(cache_->params().hit_cost * nblocks);
  AccountService(cache_->params().hit_cost * nblocks, ServiceCat::kCache);
  WriteBlocksOut(cache_->EvictToCapacity(), sim_->CurrentThread(),
                 ServiceCat::kWriteback);
  ThrottleDirty();
}

void StorageStack::WriteSync(uint64_t lba, uint32_t nblocks) {
  uint32_t issuer = sim_->CurrentThread();
  cache_->InsertClean(lba, nblocks);  // resident, not dirty: it's on media
  BlockingIo(lba, nblocks, /*is_write=*/true, issuer, ServiceCat::kMediaWrite);
  WriteBlocksOut(cache_->EvictToCapacity(), issuer, ServiceCat::kWriteback);
}

void StorageStack::ThrottleDirty() {
  // Foreground throttling: writers over the dirty limit must clean pages.
  while (cache_->OverDirtyLimit()) {
    std::vector<uint64_t> victims = cache_->CollectOldestDirty(256);
    if (victims.empty()) {
      return;
    }
    WriteBlocksOut(std::move(victims), sim_->CurrentThread(),
                   ServiceCat::kWriteback);
  }
}

void StorageStack::WriteBlocksOut(std::vector<uint64_t> blocks, uint32_t issuer,
                                  ServiceCat cat) {
  if (blocks.empty()) {
    return;
  }
  std::sort(blocks.begin(), blocks.end());
  size_t i = 0;
  while (i < blocks.size()) {
    size_t j = i + 1;
    while (j < blocks.size() && blocks[j] == blocks[j - 1] + 1) {
      j++;
    }
    BlockingIo(blocks[i], static_cast<uint32_t>(j - i), /*is_write=*/true,
               issuer, cat);
    i = j;
  }
}

void StorageStack::Flush(const std::vector<std::pair<uint64_t, uint32_t>>& ranges) {
  std::vector<uint64_t> dirty;
  for (const auto& [lba, nblocks] : ranges) {
    std::vector<uint64_t> d = cache_->CollectDirty(lba, nblocks);
    dirty.insert(dirty.end(), d.begin(), d.end());
  }
  WriteBlocksOut(std::move(dirty), sim_->CurrentThread(),
                 ServiceCat::kMediaWrite);
}

void StorageStack::Discard(uint64_t lba, uint32_t nblocks) {
  cache_->Invalidate(lba, nblocks);
}

StorageCounters StorageStack::Counters() const {
  StorageCounters c;
  c.cache_hit_blocks = cache_->HitBlocks();
  c.cache_miss_blocks = cache_->MissBlocks();
  c.cache_evicted_blocks = cache_->EvictedBlocks();
  c.cache_writeback_blocks = cache_->WritebackBlocks();
  c.media_read_blocks = media_read_blocks_;
  c.media_write_blocks = media_write_blocks_;
  if (config_.scheduler == SchedulerKind::kCfq) {
    c.cfq_context_switches =
        static_cast<const CfqScheduler&>(*scheduler_).ContextSwitches();
  }
  if (config_.raid_members > 1) {
    const auto& raid = static_cast<const Raid0&>(*top_device_);
    c.raid_member_read_blocks = raid.MemberReadBlocks();
    c.raid_member_write_blocks = raid.MemberWriteBlocks();
  }
  c.service_cache_ns = service_cache_ns_;
  c.service_media_read_ns = service_media_read_ns_;
  c.service_media_write_ns = service_media_write_ns_;
  c.service_writeback_ns = service_writeback_ns_;
  return c;
}

}  // namespace artc::storage

#include "src/vfs/vfs.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace artc::vfs {

using trace::kEEXIST;
using trace::kEINVAL;
using trace::kEISDIR;
using trace::kELOOP;
using trace::kENODATA;
using trace::kENOENT;
using trace::kENOTDIR;
using trace::kENOTEMPTY;
using trace::kEBADF;
using trace::kEPERM;
using trace::kOpenAppend;
using trace::kOpenCreate;
using trace::kOpenDirectory;
using trace::kOpenExcl;
using trace::kOpenNoFollow;
using trace::kOpenRead;
using trace::kOpenTrunc;
using trace::kOpenWrite;

namespace {

constexpr uint8_t kTypeFile = 0;
constexpr uint8_t kTypeDir = 1;
constexpr uint8_t kTypeSymlink = 2;
constexpr uint8_t kTypeSpecial = 3;

constexpr uint32_t kBlockSize = storage::kBlockSize;
constexpr int kMaxSymlinkDepth = 8;
constexpr uint64_t kDirEntriesPerBlock = 64;

uint64_t BlocksForSize(uint64_t bytes) { return (bytes + kBlockSize - 1) / kBlockSize; }

}  // namespace

FsProfile MakeFsProfile(const std::string& name) {
  FsProfile p;
  p.name = name;
  if (name == "ext4") {
    return p;
  }
  if (name == "ext3") {
    p.meta_cpu = Us(4);
    p.journal_blocks_per_txn = 2;
    p.fsync_flushes_all_dirty = true;  // ordered-mode data flushing
    p.alloc_chunk_blocks = 256;        // no delayed allocation
    return p;
  }
  if (name == "jfs") {
    p.meta_cpu = Us(6);
    p.journal_blocks_per_txn = 1;
    p.alloc_chunk_blocks = 1024;
    return p;
  }
  if (name == "xfs") {
    p.meta_cpu = Us(2);
    p.journal_blocks_per_txn = 2;
    p.alloc_chunk_blocks = 4096;
    return p;
  }
  ARTC_CHECK_MSG(false, "unknown fs profile '%s'", name.c_str());
  return p;
}

PlatformProfile MakePlatformProfile(const std::string& name) {
  PlatformProfile p;
  p.name = name;
  if (name == "linux") {
    return p;
  }
  if (name == "osx") {
    p.dev_random_read = Us(3);  // non-blocking random source
    p.fsync_is_device_flush_only = true;
    return p;
  }
  ARTC_CHECK_MSG(false, "unknown platform profile '%s'", name.c_str());
  return p;
}

void TraceRecorder::Record(trace::TraceEvent ev) {
  ev.index = out_->events.size();
  out_->events.push_back(std::move(ev));
}

struct Vfs::Inode {
  uint64_t ino = 0;
  uint8_t type = kTypeFile;
  uint32_t mode = 0644;
  uint64_t size = 0;
  uint32_t nlink = 0;
  uint32_t open_count = 0;
  std::vector<std::pair<uint64_t, uint32_t>> extents;  // (lba, nblocks), file order
  uint64_t allocated_blocks = 0;
  std::map<std::string, uint64_t> children;  // dirs: name -> ino
  std::string symlink_target;
  std::map<std::string, uint64_t> xattrs;    // name -> value size
  std::string special_kind;                  // "random"/"urandom"/"null"
  uint64_t inode_block_lba = 0;
};

struct Vfs::OpenFile {
  uint64_t ino = 0;
  int64_t offset = 0;
  uint32_t flags = 0;
  uint64_t next_seq_block = UINT64_MAX;  // read-ahead detection
};

struct Vfs::ResolveOutcome {
  int err = 0;               // 0 if the full path resolved
  Inode* node = nullptr;     // resolved node (when err == 0)
  Inode* parent = nullptr;   // parent dir of the final component, if it exists
  std::string final_name;    // final component name
};

Vfs::Vfs(sim::Simulation* simulation, storage::StorageStack* stack, FsProfile fs_profile,
         PlatformProfile platform)
    : sim_(simulation), stack_(stack), fs_(std::move(fs_profile)),
      platform_(std::move(platform)) {
  journal_start_ = 0;
  inode_region_start_ = journal_start_ + journal_blocks_;
  data_start_ = inode_region_start_ + inode_region_blocks_;
  alloc_cursor_ = data_start_;
  Inode* root = NewInode(kTypeDir);
  root->nlink = 2;
  root_ino_ = root->ino;
  fd_table_.resize(3);  // fds 0-2 reserved (stdio)
}

Vfs::~Vfs() = default;

Vfs::Inode* Vfs::GetInode(uint64_t ino) {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : it->second.get();
}

const Vfs::Inode* Vfs::GetInode(uint64_t ino) const {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : it->second.get();
}

Vfs::Inode* Vfs::NewInode(uint8_t type) {
  auto node = std::make_unique<Inode>();
  node->ino = next_ino_++;
  node->type = type;
  // 16 inodes per metadata block, laid out in creation order (good locality
  // for files created together).
  node->inode_block_lba = inode_region_start_ + (node->ino / 16) % inode_region_blocks_;
  Inode* raw = node.get();
  inodes_[raw->ino] = std::move(node);
  return raw;
}

void Vfs::FreeInode(Inode* inode) {
  for (const auto& [lba, nblocks] : inode->extents) {
    stack_->Discard(lba, nblocks);
  }
  inodes_.erase(inode->ino);
}

void Vfs::UnrefInode(uint64_t ino) {
  Inode* inode = GetInode(ino);
  ARTC_CHECK(inode != nullptr);
  if (inode->nlink == 0 && inode->open_count == 0) {
    FreeInode(inode);
  }
}

void Vfs::EnsureExtents(Inode* inode, uint64_t up_to_block) {
  while (inode->allocated_blocks < up_to_block) {
    uint64_t need = up_to_block - inode->allocated_blocks;
    uint32_t take = static_cast<uint32_t>(std::min<uint64_t>(need, fs_.alloc_chunk_blocks));
    uint64_t lba = alloc_cursor_;
    alloc_cursor_ += take;
    ARTC_CHECK_MSG(alloc_cursor_ <= stack_->device().CapacityBlocks(),
                   "simulated device full");
    if (!inode->extents.empty() &&
        inode->extents.back().first + inode->extents.back().second == lba) {
      inode->extents.back().second += take;
    } else {
      inode->extents.push_back({lba, take});
    }
    inode->allocated_blocks += take;
  }
}

std::vector<std::pair<uint64_t, uint32_t>> Vfs::MapRange(const Inode* inode, uint64_t block,
                                                         uint64_t nblocks) const {
  std::vector<std::pair<uint64_t, uint32_t>> out;
  uint64_t pos = 0;  // file block index at the start of the current extent
  for (const auto& [lba, len] : inode->extents) {
    uint64_t ext_end = pos + len;
    uint64_t want_end = block + nblocks;
    if (ext_end > block && pos < want_end) {
      uint64_t from = std::max(pos, block);
      uint64_t to = std::min(ext_end, want_end);
      out.push_back({lba + (from - pos), static_cast<uint32_t>(to - from)});
    }
    pos = ext_end;
    if (pos >= block + nblocks) {
      break;
    }
  }
  return out;
}

void Vfs::ReadInodeBlock(const Inode* inode) {
  stack_->Read(inode->inode_block_lba, 1, /*sequential_hint=*/false);
}

void Vfs::DirtyInodeBlock(const Inode* inode) {
  stack_->cache().InsertDirty(inode->inode_block_lba, 1);
}

void Vfs::ReadDirBlocks(Inode* dir) {
  uint64_t blocks = std::max<uint64_t>(1, BlocksForSize(dir->size));
  EnsureExtents(dir, blocks);
  for (const auto& [lba, len] : MapRange(dir, 0, blocks)) {
    stack_->Read(lba, len, /*sequential_hint=*/false);
  }
}

void Vfs::TouchDirData(Inode* dir) {
  dir->size = (dir->children.size() / kDirEntriesPerBlock + 1) * kBlockSize;
  uint64_t blocks = BlocksForSize(dir->size);
  EnsureExtents(dir, blocks);
  uint64_t last = blocks - 1;
  for (const auto& [lba, len] : MapRange(dir, last, 1)) {
    stack_->cache().InsertDirty(lba, len);
  }
  DirtyInodeBlock(dir);
}

void Vfs::JournalAppend() {
  pending_journal_blocks_ += fs_.journal_blocks_per_txn;
}

void Vfs::DeviceBarrier() {
  // Device write-cache flush. Mechanical disks pay roughly a rotation; flash
  // pays a controller round-trip.
  bool is_ssd = stack_->config().device == storage::DeviceKind::kSsd;
  sim_->Sleep(is_ssd ? Us(60) : Ms(4));
}

void Vfs::JournalCommit() {
  if (pending_journal_blocks_ == 0) {
    return;
  }
  uint64_t blocks = std::min(pending_journal_blocks_, journal_blocks_ / 2);
  // The journal is written sequentially within its circular region.
  uint64_t lba = journal_start_ + journal_head_;
  if (journal_head_ + blocks > journal_blocks_) {
    journal_head_ = 0;
    lba = journal_start_;
  }
  journal_head_ = (journal_head_ + blocks) % journal_blocks_;
  stack_->WriteSync(lba, static_cast<uint32_t>(blocks));
  journal_committed_blocks_ += blocks;
  pending_journal_blocks_ = 0;
}

Vfs::ResolveOutcome Vfs::Resolve(const std::string& path, bool follow_last, bool timed) {
  int budget = kMaxSymlinkDepth;
  return ResolveWithBudget(path, follow_last, timed, &budget);
}

Vfs::ResolveOutcome Vfs::ResolveWithBudget(const std::string& path, bool follow_last,
                                           bool timed, int* symlink_budget) {
  ResolveOutcome out;
  std::string norm = NormalizePath(path);
  std::vector<std::string> parts;
  for (std::string_view p : SplitPath(norm)) {
    parts.emplace_back(p);
  }
  Inode* dir = GetInode(root_ino_);
  if (parts.empty()) {
    out.node = dir;
    out.parent = dir;
    out.final_name = "/";
    return out;
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    if (dir->type != kTypeDir) {
      out.err = kENOTDIR;
      return out;
    }
    if (timed) {
      sim_->Sleep(fs_.lookup_cpu);
    }
    bool last = i + 1 == parts.size();
    auto it = dir->children.find(parts[i]);
    if (it == dir->children.end()) {
      out.err = kENOENT;
      if (last) {
        out.parent = dir;
        out.final_name = parts[i];
      }
      return out;
    }
    Inode* child = GetInode(it->second);
    ARTC_CHECK(child != nullptr);
    // Follow symlinks (always for intermediate components; for the final
    // component only when requested).
    while (child->type == kTypeSymlink && (!last || follow_last)) {
      if (--*symlink_budget < 0) {
        out.err = kELOOP;
        return out;
      }
      std::string target = child->symlink_target;
      if (!target.empty() && target[0] == '/') {
        // Absolute symlink: restart resolution with remaining components,
        // carrying the hop budget so loops terminate with ELOOP.
        std::string rest = target;
        for (size_t j = i + 1; j < parts.size(); ++j) {
          rest = JoinPath(rest, parts[j]);
        }
        return ResolveWithBudget(rest, follow_last, timed, symlink_budget);
      }
      // Relative symlink: resolve within the current directory.
      std::string rest = JoinPath("/", target);
      // Build absolute path of current dir is not tracked; relative links
      // are resolved against the parent dir by splicing components.
      std::vector<std::string> spliced;
      for (std::string_view p : SplitPath(target)) {
        spliced.emplace_back(p);
      }
      for (size_t j = i + 1; j < parts.size(); ++j) {
        spliced.push_back(parts[j]);
      }
      parts.erase(parts.begin() + static_cast<ptrdiff_t>(i), parts.end());
      parts.insert(parts.end(), spliced.begin(), spliced.end());
      // Re-enter loop at the same index, now naming the link target.
      if (i >= parts.size()) {
        out.err = kENOENT;
        return out;
      }
      auto it2 = dir->children.find(parts[i]);
      if (it2 == dir->children.end()) {
        out.err = kENOENT;
        out.parent = dir;
        out.final_name = parts[i];
        return out;
      }
      child = GetInode(it2->second);
      last = i + 1 == parts.size();
    }
    if (last) {
      out.node = child;
      out.parent = dir;
      out.final_name = parts[i];
      return out;
    }
    dir = child;
  }
  out.err = kENOENT;
  return out;
}

int32_t Vfs::AllocFd(std::shared_ptr<OpenFile> of) {
  for (size_t i = 3; i < fd_table_.size(); ++i) {
    if (fd_table_[i] == nullptr) {
      fd_table_[i] = std::move(of);
      return static_cast<int32_t>(i);
    }
  }
  fd_table_.push_back(std::move(of));
  return static_cast<int32_t>(fd_table_.size() - 1);
}

Vfs::OpenFile* Vfs::GetOpenFile(int32_t fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= fd_table_.size()) {
    return nullptr;
  }
  return fd_table_[static_cast<size_t>(fd)].get();
}

template <typename Fn>
VfsResult Vfs::Traced(trace::Sys call, Fn&& body, trace::TraceEvent proto) {
  if (recorder_ == nullptr) {
    return body();
  }
  proto.call = call;
  proto.tid = sim_->CurrentThread();
  proto.enter = sim_->Now();
  VfsResult r = body();
  proto.ret_time = sim_->Now();
  proto.ret = r.TraceRet();
  recorder_->Record(std::move(proto));
  return r;
}

// ---------------------------------------------------------------------------
// Namespace operations
// ---------------------------------------------------------------------------

VfsResult Vfs::Open(const std::string& path, uint32_t flags, uint32_t mode) {
  trace::TraceEvent proto;
  proto.path = path;
  proto.flags = flags;
  proto.mode = mode;
  auto body = [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, !(flags & kOpenNoFollow), /*timed=*/true);
    Inode* node = r.node;
    if (r.err == kENOENT && (flags & kOpenCreate) && r.parent != nullptr) {
      // Create the file.
      ReadDirBlocks(r.parent);
      node = NewInode(kTypeFile);
      node->mode = mode;
      node->nlink = 1;
      r.parent->children[r.final_name] = node->ino;
      TouchDirData(r.parent);
      DirtyInodeBlock(node);
      JournalAppend();
    } else if (r.err != 0) {
      return {0, r.err};
    } else {
      if ((flags & kOpenCreate) && (flags & kOpenExcl)) {
        return {0, kEEXIST};
      }
      if (node->type == kTypeDir && (flags & kOpenWrite)) {
        return {0, kEISDIR};
      }
      if ((flags & kOpenDirectory) && node->type != kTypeDir) {
        return {0, kENOTDIR};
      }
      if (node->type == kTypeSymlink) {
        return {0, kELOOP};  // O_NOFOLLOW hit a symlink
      }
      ReadInodeBlock(node);
      if ((flags & kOpenTrunc) && node->type == kTypeFile && node->size > 0) {
        for (const auto& [lba, nblocks] : node->extents) {
          stack_->Discard(lba, nblocks);
        }
        node->size = 0;
        DirtyInodeBlock(node);
        JournalAppend();
      }
    }
    node->open_count++;
    auto of = std::make_shared<OpenFile>();
    of->ino = node->ino;
    of->flags = flags;
    of->offset = (flags & kOpenAppend) ? static_cast<int64_t>(node->size) : 0;
    int32_t fd = AllocFd(std::move(of));
    return {fd, 0};
  };
  VfsResult res = Traced(trace::Sys::kOpen, body, std::move(proto));
  return res;
}

VfsResult Vfs::Close(int32_t fd) {
  trace::TraceEvent proto;
  proto.fd = fd;
  return Traced(trace::Sys::kClose, [&]() -> VfsResult {
    sim_->Sleep(Us(1));
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr) {
      return {0, kEBADF};
    }
    uint64_t ino = of->ino;
    bool last_ref = fd_table_[static_cast<size_t>(fd)].use_count() == 1;
    fd_table_[static_cast<size_t>(fd)] = nullptr;
    if (last_ref) {
      Inode* node = GetInode(ino);
      ARTC_CHECK(node != nullptr);
      node->open_count--;
      UnrefInode(ino);
    }
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::Dup(int32_t fd) {
  trace::TraceEvent proto;
  proto.fd = fd;
  return Traced(trace::Sys::kDup, [&]() -> VfsResult {
    sim_->Sleep(Us(1));
    if (GetOpenFile(fd) == nullptr) {
      return {0, kEBADF};
    }
    std::shared_ptr<OpenFile> of = fd_table_[static_cast<size_t>(fd)];
    GetInode(of->ino)->open_count++;
    int32_t nfd = AllocFd(std::move(of));
    return {nfd, 0};
  }, std::move(proto));
}

VfsResult Vfs::Dup2(int32_t fd, int32_t newfd) {
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.fd2 = newfd;
  return Traced(trace::Sys::kDup2, [&]() -> VfsResult {
    sim_->Sleep(Us(1));
    if (GetOpenFile(fd) == nullptr || newfd < 0) {
      return {0, kEBADF};
    }
    if (newfd == fd) {
      return {newfd, 0};
    }
    if (static_cast<size_t>(newfd) >= fd_table_.size()) {
      fd_table_.resize(static_cast<size_t>(newfd) + 1);
    }
    if (fd_table_[static_cast<size_t>(newfd)] != nullptr) {
      // Implicit close of newfd.
      std::shared_ptr<OpenFile> old = fd_table_[static_cast<size_t>(newfd)];
      bool last_ref = old.use_count() == 2;  // table + local
      fd_table_[static_cast<size_t>(newfd)] = nullptr;
      if (last_ref) {
        Inode* node = GetInode(old->ino);
        node->open_count--;
        UnrefInode(old->ino);
      }
    }
    fd_table_[static_cast<size_t>(newfd)] = fd_table_[static_cast<size_t>(fd)];
    GetInode(fd_table_[static_cast<size_t>(fd)]->ino)->open_count++;
    return {newfd, 0};
  }, std::move(proto));
}

VfsResult Vfs::Mkdir(const std::string& path, uint32_t mode) {
  trace::TraceEvent proto;
  proto.path = path;
  proto.mode = mode;
  return Traced(trace::Sys::kMkdir, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/false, /*timed=*/true);
    if (r.err == 0) {
      return {0, kEEXIST};
    }
    if (r.err != kENOENT || r.parent == nullptr) {
      return {0, r.err};
    }
    ReadDirBlocks(r.parent);
    Inode* dir = NewInode(kTypeDir);
    dir->mode = mode;
    dir->nlink = 2;
    r.parent->children[r.final_name] = dir->ino;
    r.parent->nlink++;
    TouchDirData(r.parent);
    DirtyInodeBlock(dir);
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::Rmdir(const std::string& path) {
  trace::TraceEvent proto;
  proto.path = path;
  return Traced(trace::Sys::kRmdir, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/false, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    if (r.node->type != kTypeDir) {
      return {0, kENOTDIR};
    }
    if (!r.node->children.empty()) {
      return {0, kENOTEMPTY};
    }
    if (r.node->ino == root_ino_) {
      return {0, kEPERM};
    }
    ReadDirBlocks(r.parent);
    r.parent->children.erase(r.final_name);
    r.parent->nlink--;
    r.node->nlink = 0;
    TouchDirData(r.parent);
    JournalAppend();
    UnrefInode(r.node->ino);
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::Unlink(const std::string& path) {
  trace::TraceEvent proto;
  proto.path = path;
  return Traced(trace::Sys::kUnlink, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/false, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    if (r.node->type == kTypeDir) {
      return {0, kEISDIR};
    }
    ReadDirBlocks(r.parent);
    r.parent->children.erase(r.final_name);
    r.node->nlink--;
    TouchDirData(r.parent);
    JournalAppend();
    UnrefInode(r.node->ino);
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::Rename(const std::string& from, const std::string& to) {
  trace::TraceEvent proto;
  proto.path = from;
  proto.path2 = to;
  return Traced(trace::Sys::kRename, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu * 2);
    ResolveOutcome src = Resolve(from, /*follow_last=*/false, /*timed=*/true);
    if (src.err != 0) {
      return {0, src.err};
    }
    ResolveOutcome dst = Resolve(to, /*follow_last=*/false, /*timed=*/true);
    if (dst.err != 0 && !(dst.err == kENOENT && dst.parent != nullptr)) {
      return {0, dst.err};
    }
    if (src.node->type == kTypeDir) {
      // A directory cannot be moved into its own subtree.
      for (Inode* d = dst.parent; d != nullptr;) {
        if (d == src.node) {
          return {0, kEINVAL};
        }
        // Walk upward is not tracked; conservatively check only one level.
        break;
      }
    }
    if (dst.node != nullptr) {
      if (dst.node == src.node) {
        return {0, 0};
      }
      if (dst.node->type == kTypeDir) {
        if (src.node->type != kTypeDir) {
          return {0, kEISDIR};
        }
        if (!dst.node->children.empty()) {
          return {0, kENOTEMPTY};
        }
      } else if (src.node->type == kTypeDir) {
        return {0, kENOTDIR};
      }
      // Replace the target.
      dst.node->nlink -= (dst.node->type == kTypeDir) ? 2 : 1;
      uint64_t doomed = dst.node->ino;
      dst.parent->children.erase(dst.final_name);
      UnrefInode(doomed);
    }
    ReadDirBlocks(src.parent);
    if (dst.parent != src.parent) {
      ReadDirBlocks(dst.parent);
    }
    src.parent->children.erase(src.final_name);
    dst.parent->children[dst.final_name] = src.node->ino;
    if (src.node->type == kTypeDir && src.parent != dst.parent) {
      src.parent->nlink--;
      dst.parent->nlink++;
    }
    TouchDirData(src.parent);
    if (dst.parent != src.parent) {
      TouchDirData(dst.parent);
    }
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::Link(const std::string& existing, const std::string& link) {
  trace::TraceEvent proto;
  proto.path = existing;
  proto.path2 = link;
  return Traced(trace::Sys::kLink, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome src = Resolve(existing, /*follow_last=*/true, /*timed=*/true);
    if (src.err != 0) {
      return {0, src.err};
    }
    if (src.node->type == kTypeDir) {
      return {0, kEPERM};
    }
    ResolveOutcome dst = Resolve(link, /*follow_last=*/false, /*timed=*/true);
    if (dst.err == 0) {
      return {0, kEEXIST};
    }
    if (dst.err != kENOENT || dst.parent == nullptr) {
      return {0, dst.err};
    }
    ReadDirBlocks(dst.parent);
    dst.parent->children[dst.final_name] = src.node->ino;
    src.node->nlink++;
    TouchDirData(dst.parent);
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::Symlink(const std::string& target, const std::string& link) {
  trace::TraceEvent proto;
  proto.path = target;
  proto.path2 = link;
  return Traced(trace::Sys::kSymlink, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome dst = Resolve(link, /*follow_last=*/false, /*timed=*/true);
    if (dst.err == 0) {
      return {0, kEEXIST};
    }
    if (dst.err != kENOENT || dst.parent == nullptr) {
      return {0, dst.err};
    }
    ReadDirBlocks(dst.parent);
    Inode* node = NewInode(kTypeSymlink);
    node->symlink_target = target;
    node->nlink = 1;
    node->size = target.size();
    dst.parent->children[dst.final_name] = node->ino;
    TouchDirData(dst.parent);
    DirtyInodeBlock(node);
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::Readlink(const std::string& path) {
  trace::TraceEvent proto;
  proto.path = path;
  return Traced(trace::Sys::kReadlink, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/false, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    if (r.node->type != kTypeSymlink) {
      return {0, kEINVAL};
    }
    ReadInodeBlock(r.node);
    return {static_cast<int64_t>(r.node->symlink_target.size()), 0};
  }, std::move(proto));
}

// ---------------------------------------------------------------------------
// Data operations
// ---------------------------------------------------------------------------

namespace {

// Which file blocks does [offset, offset+count) touch?
struct BlockSpan {
  uint64_t first;
  uint64_t nblocks;
};

BlockSpan SpanFor(int64_t offset, uint64_t count) {
  uint64_t first = static_cast<uint64_t>(offset) / kBlockSize;
  uint64_t last = (static_cast<uint64_t>(offset) + count - 1) / kBlockSize;
  return {first, last - first + 1};
}

}  // namespace

VfsResult Vfs::PreadBody(int32_t fd, uint64_t count, int64_t offset) {
  {
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr || !(of->flags & kOpenRead)) {
      return {0, kEBADF};
    }
    if (offset < 0) {
      return {0, kEINVAL};
    }
    Inode* node = GetInode(of->ino);
    if (node->type == kTypeDir) {
      return {0, kEISDIR};
    }
    if (node->type == kTypeSpecial) {
      TimeNs lat = node->special_kind == "random"  ? platform_.dev_random_read
                   : node->special_kind == "urandom" ? platform_.dev_urandom_read
                                                     : 0;
      sim_->Sleep(lat + Us(1));
      return {static_cast<int64_t>(count), 0};
    }
    if (static_cast<uint64_t>(offset) >= node->size) {
      sim_->Sleep(Us(1));
      return {0, 0};  // EOF
    }
    uint64_t n = std::min(count, node->size - static_cast<uint64_t>(offset));
    if (n == 0) {
      sim_->Sleep(Us(1));
      return {0, 0};
    }
    BlockSpan span = SpanFor(offset, n);
    EnsureExtents(node, span.first + span.nblocks);
    bool sequential = of->next_seq_block == span.first;
    of->next_seq_block = span.first + span.nblocks;
    for (const auto& [lba, nblocks] : MapRange(node, span.first, span.nblocks)) {
      stack_->Read(lba, nblocks, sequential);
    }
    return {static_cast<int64_t>(n), 0};
  }
}

VfsResult Vfs::Pread(int32_t fd, uint64_t count, int64_t offset) {
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.size = count;
  proto.offset = offset;
  return Traced(trace::Sys::kPRead,
                [&]() -> VfsResult { return PreadBody(fd, count, offset); },
                std::move(proto));
}

VfsResult Vfs::Read(int32_t fd, uint64_t count) {
  OpenFile* of = GetOpenFile(fd);
  int64_t offset = of != nullptr ? of->offset : 0;
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.size = count;
  return Traced(trace::Sys::kRead, [&]() -> VfsResult {
    if (of == nullptr) {
      return {0, kEBADF};
    }
    VfsResult r = PreadBody(fd, count, offset);
    if (r.ok()) {
      of->offset += r.value;
    }
    return r;
  }, std::move(proto));
}

VfsResult Vfs::PwriteBody(int32_t fd, uint64_t count, int64_t offset, bool append) {
  {
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr || !(of->flags & kOpenWrite)) {
      return {0, kEBADF};
    }
    Inode* node = GetInode(of->ino);
    if (node->type == kTypeSpecial) {
      sim_->Sleep(Us(1));
      return {static_cast<int64_t>(count), 0};
    }
    if (count == 0) {
      return {0, 0};
    }
    if (append) {
      // Reserve the range at EOF and grow the file *before* any blocking
      // call: concurrent O_APPEND writers must never overlap.
      offset = static_cast<int64_t>(node->size);
      node->size += count;
      DirtyInodeBlock(node);
      JournalAppend();
    }
    if (offset < 0) {
      return {0, kEINVAL};
    }
    BlockSpan span = SpanFor(offset, count);
    EnsureExtents(node, span.first + span.nblocks);
    for (const auto& [lba, nblocks] : MapRange(node, span.first, span.nblocks)) {
      stack_->Write(lba, nblocks);
    }
    uint64_t end = static_cast<uint64_t>(offset) + count;
    if (!append && end > node->size) {
      node->size = end;
      DirtyInodeBlock(node);
      JournalAppend();
    }
    return {static_cast<int64_t>(count), 0};
  }
}

VfsResult Vfs::Pwrite(int32_t fd, uint64_t count, int64_t offset) {
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.size = count;
  proto.offset = offset;
  return Traced(trace::Sys::kPWrite,
                [&]() -> VfsResult { return PwriteBody(fd, count, offset); },
                std::move(proto));
}

VfsResult Vfs::Write(int32_t fd, uint64_t count) {
  OpenFile* of = GetOpenFile(fd);
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.size = count;
  return Traced(trace::Sys::kWrite, [&]() -> VfsResult {
    if (of == nullptr) {
      return {0, kEBADF};
    }
    bool append = (of->flags & kOpenAppend) != 0;
    int64_t offset = of->offset;
    VfsResult r = PwriteBody(fd, count, offset, append);
    if (r.ok()) {
      Inode* node = GetInode(of->ino);
      of->offset = append ? static_cast<int64_t>(node->size) : offset + r.value;
    }
    return r;
  }, std::move(proto));
}

VfsResult Vfs::Lseek(int32_t fd, int64_t offset, int whence) {
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.offset = offset;
  proto.whence = whence;
  return Traced(trace::Sys::kLSeek, [&]() -> VfsResult {
    sim_->Sleep(Us(1));
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr) {
      return {0, kEBADF};
    }
    Inode* node = GetInode(of->ino);
    int64_t base = 0;
    switch (whence) {
      case 0:
        base = 0;
        break;
      case 1:
        base = of->offset;
        break;
      case 2:
        base = static_cast<int64_t>(node->size);
        break;
      default:
        return {0, kEINVAL};
    }
    int64_t pos = base + offset;
    if (pos < 0) {
      return {0, kEINVAL};
    }
    of->offset = pos;
    return {pos, 0};
  }, std::move(proto));
}

VfsResult Vfs::Truncate(const std::string& path, uint64_t length) {
  trace::TraceEvent proto;
  proto.path = path;
  proto.size = length;
  return Traced(trace::Sys::kTruncate, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    if (r.node->type == kTypeDir) {
      return {0, kEISDIR};
    }
    r.node->size = length;
    DirtyInodeBlock(r.node);
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::Ftruncate(int32_t fd, uint64_t length) {
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.size = length;
  return Traced(trace::Sys::kFtruncate, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr || !(of->flags & kOpenWrite)) {
      return {0, kEBADF};
    }
    Inode* node = GetInode(of->ino);
    node->size = length;
    DirtyInodeBlock(node);
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

// ---------------------------------------------------------------------------
// Durability
// ---------------------------------------------------------------------------

VfsResult Vfs::Fsync(int32_t fd) {
  trace::TraceEvent proto;
  proto.fd = fd;
  return Traced(trace::Sys::kFsync, [&]() -> VfsResult {
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr) {
      return {0, kEBADF};
    }
    Inode* node = GetInode(of->ino);
    // Flush this file's dirty data.
    if (!node->extents.empty()) {
      stack_->Flush(node->extents);
    }
    if (fs_.fsync_flushes_all_dirty) {
      // ext3-ordered-mode behaviour: everything dirty goes out too.
      while (stack_->cache().DirtyCount() > 0) {
        std::vector<uint64_t> victims = stack_->cache().CollectOldestDirty(1024);
        if (victims.empty()) {
          break;
        }
        std::vector<std::pair<uint64_t, uint32_t>> ranges;
        for (uint64_t b : victims) {
          ranges.push_back({b, 1});
        }
        // Re-dirty and flush so coalescing happens in one place.
        for (const auto& [b, n] : ranges) {
          stack_->cache().InsertDirty(b, n);
        }
        stack_->Flush(ranges);
      }
    }
    JournalCommit();
    if (!platform_.fsync_is_device_flush_only) {
      DeviceBarrier();
    }
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::Fdatasync(int32_t fd) {
  trace::TraceEvent proto;
  proto.fd = fd;
  return Traced(trace::Sys::kFdatasync, [&]() -> VfsResult {
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr) {
      return {0, kEBADF};
    }
    Inode* node = GetInode(of->ino);
    if (!node->extents.empty()) {
      stack_->Flush(node->extents);
    }
    if (!platform_.fsync_is_device_flush_only) {
      DeviceBarrier();
    }
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::FullFsync(int32_t fd) {
  trace::TraceEvent proto;
  proto.fd = fd;
  return Traced(trace::Sys::kFcntlFullFsync, [&]() -> VfsResult {
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr) {
      return {0, kEBADF};
    }
    Inode* node = GetInode(of->ino);
    if (!node->extents.empty()) {
      stack_->Flush(node->extents);
    }
    JournalCommit();
    DeviceBarrier();  // always durable, regardless of platform fsync policy
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::SyncAll() {
  trace::TraceEvent proto;
  return Traced(trace::Sys::kSync, [&]() -> VfsResult {
    while (stack_->cache().DirtyCount() > 0) {
      std::vector<uint64_t> victims = stack_->cache().CollectOldestDirty(1024);
      if (victims.empty()) {
        break;
      }
      std::vector<std::pair<uint64_t, uint32_t>> ranges;
      for (uint64_t b : victims) {
        stack_->cache().InsertDirty(b, 1);
        ranges.push_back({b, 1});
      }
      stack_->Flush(ranges);
    }
    JournalCommit();
    DeviceBarrier();
    return {0, 0};
  }, std::move(proto));
}

// ---------------------------------------------------------------------------
// Metadata
// ---------------------------------------------------------------------------

VfsResult Vfs::Stat(const std::string& path) {
  trace::TraceEvent proto;
  proto.path = path;
  return Traced(trace::Sys::kStat, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    ReadInodeBlock(r.node);
    return {static_cast<int64_t>(r.node->size), 0};
  }, std::move(proto));
}

VfsResult Vfs::Lstat(const std::string& path) {
  trace::TraceEvent proto;
  proto.path = path;
  return Traced(trace::Sys::kLstat, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/false, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    ReadInodeBlock(r.node);
    return {static_cast<int64_t>(r.node->size), 0};
  }, std::move(proto));
}

VfsResult Vfs::Fstat(int32_t fd) {
  trace::TraceEvent proto;
  proto.fd = fd;
  return Traced(trace::Sys::kFstat, [&]() -> VfsResult {
    sim_->Sleep(Us(1));
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr) {
      return {0, kEBADF};
    }
    return {static_cast<int64_t>(GetInode(of->ino)->size), 0};
  }, std::move(proto));
}

VfsResult Vfs::Access(const std::string& path) {
  trace::TraceEvent proto;
  proto.path = path;
  return Traced(trace::Sys::kAccess, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::StatFs(const std::string& path) {
  trace::TraceEvent proto;
  proto.path = path;
  return Traced(trace::Sys::kStatFs, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/true);
    return {0, r.err};
  }, std::move(proto));
}

VfsResult Vfs::Chmod(const std::string& path, uint32_t mode) {
  trace::TraceEvent proto;
  proto.path = path;
  proto.mode = mode;
  return Traced(trace::Sys::kChmod, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    r.node->mode = mode;
    DirtyInodeBlock(r.node);
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::Utimes(const std::string& path) {
  trace::TraceEvent proto;
  proto.path = path;
  return Traced(trace::Sys::kUtimes, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    DirtyInodeBlock(r.node);
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::GetDirEntries(int32_t fd, uint64_t count) {
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.size = count;
  return Traced(trace::Sys::kGetDirEntries, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr) {
      return {0, kEBADF};
    }
    Inode* node = GetInode(of->ino);
    if (node->type != kTypeDir) {
      return {0, kENOTDIR};
    }
    ReadDirBlocks(node);
    // One scan returns everything (offset bookkeeping elided): value is the
    // entry count on the first call, 0 on subsequent calls (EOF).
    if (of->offset == 0) {
      of->offset = static_cast<int64_t>(node->children.size());
      return {static_cast<int64_t>(node->children.size()), 0};
    }
    return {0, 0};
  }, std::move(proto));
}

// ---------------------------------------------------------------------------
// Extended attributes
// ---------------------------------------------------------------------------

VfsResult Vfs::GetXattr(const std::string& path, const std::string& name) {
  trace::TraceEvent proto;
  proto.path = path;
  proto.name = name;
  return Traced(trace::Sys::kGetXattr, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    ReadInodeBlock(r.node);
    auto it = r.node->xattrs.find(name);
    if (it == r.node->xattrs.end()) {
      return {0, kENODATA};
    }
    return {static_cast<int64_t>(it->second), 0};
  }, std::move(proto));
}

VfsResult Vfs::SetXattr(const std::string& path, const std::string& name, uint64_t size) {
  trace::TraceEvent proto;
  proto.path = path;
  proto.name = name;
  proto.size = size;
  return Traced(trace::Sys::kSetXattr, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    r.node->xattrs[name] = size;
    DirtyInodeBlock(r.node);
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::ListXattr(const std::string& path) {
  trace::TraceEvent proto;
  proto.path = path;
  return Traced(trace::Sys::kListXattr, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    ReadInodeBlock(r.node);
    int64_t total = 0;
    for (const auto& [n, sz] : r.node->xattrs) {
      total += static_cast<int64_t>(n.size()) + 1;
    }
    return {total, 0};
  }, std::move(proto));
}

VfsResult Vfs::RemoveXattr(const std::string& path, const std::string& name) {
  trace::TraceEvent proto;
  proto.path = path;
  proto.name = name;
  return Traced(trace::Sys::kRemoveXattr, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/true);
    if (r.err != 0) {
      return {0, r.err};
    }
    auto it = r.node->xattrs.find(name);
    if (it == r.node->xattrs.end()) {
      return {0, kENODATA};
    }
    r.node->xattrs.erase(it);
    DirtyInodeBlock(r.node);
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::FGetXattr(int32_t fd, const std::string& name) {
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.name = name;
  return Traced(trace::Sys::kFGetXattr, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr) {
      return {0, kEBADF};
    }
    Inode* node = GetInode(of->ino);
    auto it = node->xattrs.find(name);
    if (it == node->xattrs.end()) {
      return {0, kENODATA};
    }
    return {static_cast<int64_t>(it->second), 0};
  }, std::move(proto));
}

VfsResult Vfs::FSetXattr(int32_t fd, const std::string& name, uint64_t size) {
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.name = name;
  proto.size = size;
  return Traced(trace::Sys::kFSetXattr, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr) {
      return {0, kEBADF};
    }
    Inode* node = GetInode(of->ino);
    node->xattrs[name] = size;
    DirtyInodeBlock(node);
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

// ---------------------------------------------------------------------------
// Hints & OS X extras
// ---------------------------------------------------------------------------

VfsResult Vfs::Fadvise(int32_t fd, int64_t offset, uint64_t len) {
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.offset = offset;
  proto.size = len;
  return Traced(trace::Sys::kFadvise, [&]() -> VfsResult {
    sim_->Sleep(Us(1));
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr) {
      return {0, kEBADF};
    }
    Inode* node = GetInode(of->ino);
    if (node->type != kTypeFile || len == 0 || node->size == 0) {
      return {0, 0};
    }
    uint64_t n = std::min(len, node->size - std::min<uint64_t>(offset, node->size));
    if (n == 0) {
      return {0, 0};
    }
    BlockSpan span = SpanFor(offset, n);
    EnsureExtents(node, span.first + span.nblocks);
    for (const auto& [lba, nblocks] : MapRange(node, span.first, span.nblocks)) {
      stack_->Read(lba, nblocks, /*sequential_hint=*/true);
    }
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::Fallocate(int32_t fd, int64_t offset, uint64_t len) {
  trace::TraceEvent proto;
  proto.fd = fd;
  proto.offset = offset;
  proto.size = len;
  return Traced(trace::Sys::kFallocate, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu);
    OpenFile* of = GetOpenFile(fd);
    if (of == nullptr || !(of->flags & kOpenWrite)) {
      return {0, kEBADF};
    }
    Inode* node = GetInode(of->ino);
    BlockSpan span = SpanFor(offset, std::max<uint64_t>(len, 1));
    EnsureExtents(node, span.first + span.nblocks);
    uint64_t end = static_cast<uint64_t>(offset) + len;
    if (end > node->size) {
      node->size = end;
      DirtyInodeBlock(node);
      JournalAppend();
    }
    return {0, 0};
  }, std::move(proto));
}

VfsResult Vfs::ExchangeData(const std::string& a, const std::string& b) {
  trace::TraceEvent proto;
  proto.path = a;
  proto.path2 = b;
  return Traced(trace::Sys::kExchangeData, [&]() -> VfsResult {
    sim_->Sleep(fs_.meta_cpu * 2);
    ResolveOutcome ra = Resolve(a, /*follow_last=*/true, /*timed=*/true);
    if (ra.err != 0) {
      return {0, ra.err};
    }
    ResolveOutcome rb = Resolve(b, /*follow_last=*/true, /*timed=*/true);
    if (rb.err != 0) {
      return {0, rb.err};
    }
    if (ra.node->type != kTypeFile || rb.node->type != kTypeFile) {
      return {0, kEINVAL};
    }
    std::swap(ra.node->size, rb.node->size);
    std::swap(ra.node->extents, rb.node->extents);
    std::swap(ra.node->allocated_blocks, rb.node->allocated_blocks);
    DirtyInodeBlock(ra.node);
    DirtyInodeBlock(rb.node);
    JournalAppend();
    return {0, 0};
  }, std::move(proto));
}

// ---------------------------------------------------------------------------
// Infrastructure
// ---------------------------------------------------------------------------

bool Vfs::Exists(const std::string& path) {
  ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/false);
  return r.err == 0;
}

uint64_t Vfs::FileSize(const std::string& path) {
  ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/false);
  return r.err == 0 ? r.node->size : 0;
}

void Vfs::MustMkdirAll(const std::string& path) {
  std::string norm = NormalizePath(path);
  Inode* dir = GetInode(root_ino_);
  for (std::string_view comp : SplitPath(norm)) {
    std::string name(comp);
    auto it = dir->children.find(name);
    if (it != dir->children.end()) {
      dir = GetInode(it->second);
      ARTC_CHECK_MSG(dir->type == kTypeDir, "MustMkdirAll: %s has a non-dir component",
                     norm.c_str());
      continue;
    }
    Inode* child = NewInode(kTypeDir);
    child->nlink = 2;
    dir->children[name] = child->ino;
    dir->nlink++;
    dir->size = (dir->children.size() / kDirEntriesPerBlock + 1) * kBlockSize;
    dir = child;
  }
}

void Vfs::MustCreateFile(const std::string& path, uint64_t size) {
  std::string norm = NormalizePath(path);
  MustMkdirAll(std::string(DirName(norm)));
  ResolveOutcome r = Resolve(norm, /*follow_last=*/false, /*timed=*/false);
  Inode* node = nullptr;
  if (r.err == 0) {
    node = r.node;
    ARTC_CHECK_MSG(node->type == kTypeFile, "MustCreateFile: %s exists as non-file",
                   norm.c_str());
  } else {
    ARTC_CHECK_MSG(r.err == kENOENT && r.parent != nullptr, "MustCreateFile: bad path %s",
                   norm.c_str());
    node = NewInode(kTypeFile);
    node->nlink = 1;
    r.parent->children[r.final_name] = node->ino;
    r.parent->size = (r.parent->children.size() / kDirEntriesPerBlock + 1) * kBlockSize;
  }
  node->size = size;
  if (size > 0) {
    EnsureExtents(node, BlocksForSize(size));
  }
}

void Vfs::MustCreateSymlink(const std::string& path, const std::string& target) {
  std::string norm = NormalizePath(path);
  MustMkdirAll(std::string(DirName(norm)));
  ResolveOutcome r = Resolve(norm, /*follow_last=*/false, /*timed=*/false);
  if (r.err == 0 && r.node->type == kTypeSymlink) {
    r.node->symlink_target = target;
    return;
  }
  ARTC_CHECK_MSG(r.err == kENOENT && r.parent != nullptr, "MustCreateSymlink: bad path %s",
                 norm.c_str());
  Inode* node = NewInode(kTypeSymlink);
  node->nlink = 1;
  node->symlink_target = target;
  node->size = target.size();
  r.parent->children[r.final_name] = node->ino;
}

void Vfs::MustCreateSpecial(const std::string& path, const std::string& kind) {
  std::string norm = NormalizePath(path);
  MustMkdirAll(std::string(DirName(norm)));
  ResolveOutcome r = Resolve(norm, /*follow_last=*/false, /*timed=*/false);
  if (r.err == 0 && r.node->type == kTypeSpecial) {
    r.node->special_kind = kind;
    return;
  }
  ARTC_CHECK_MSG(r.err == kENOENT && r.parent != nullptr, "MustCreateSpecial: bad path %s",
                 norm.c_str());
  Inode* node = NewInode(kTypeSpecial);
  node->nlink = 1;
  node->special_kind = kind;
  r.parent->children[r.final_name] = node->ino;
}

void Vfs::MustSetXattr(const std::string& path, const std::string& name, uint64_t size) {
  ResolveOutcome r = Resolve(path, /*follow_last=*/true, /*timed=*/false);
  ARTC_CHECK_MSG(r.err == 0, "MustSetXattr: %s not found", path.c_str());
  r.node->xattrs[name] = size;
}

trace::FsSnapshot Vfs::CaptureSnapshot() const {
  trace::FsSnapshot snap;
  const Inode* root = GetInode(root_ino_);
  for (const auto& [name, child_ino] : root->children) {
    const Inode* child = GetInode(child_ino);
    std::string child_path = "/" + name;
    std::vector<std::pair<std::string, const Inode*>> stack = {{child_path, child}};
    while (!stack.empty()) {
      auto [p, node] = stack.back();
      stack.pop_back();
      switch (node->type) {
        case kTypeDir: {
          snap.AddDir(p);
          for (const auto& [n2, i2] : node->children) {
            stack.push_back({JoinPath(p, n2), GetInode(i2)});
          }
          break;
        }
        case kTypeFile: {
          snap.AddFile(p, node->size);
          for (const auto& [xname, xsize] : node->xattrs) {
            snap.entries.back().xattr_names.push_back(xname);
          }
          break;
        }
        case kTypeSymlink:
          snap.AddSymlink(p, node->symlink_target);
          break;
        case kTypeSpecial:
          snap.AddSpecial(p, node->special_kind);
          break;
        default:
          break;
      }
    }
  }
  snap.Canonicalize();
  return snap;
}

void Vfs::RestoreSnapshot(const trace::FsSnapshot& snapshot, bool delta) {
  if (!delta) {
    // Full init: wipe and recreate.
    Inode* root = GetInode(root_ino_);
    std::vector<uint64_t> doomed;
    for (const auto& [name, ino] : root->children) {
      doomed.push_back(ino);
    }
    root->children.clear();
    // Inodes for the old tree are simply dropped; extents are not reclaimed
    // (bump allocator), which also models a freshly-aged device reasonably.
    for (uint64_t ino : doomed) {
      std::vector<uint64_t> queue = {ino};
      while (!queue.empty()) {
        uint64_t cur = queue.back();
        queue.pop_back();
        Inode* node = GetInode(cur);
        if (node == nullptr) {
          continue;
        }
        for (const auto& [n2, i2] : node->children) {
          queue.push_back(i2);
        }
        for (const auto& [lba, nblocks] : node->extents) {
          stack_->Discard(lba, nblocks);
        }
        inodes_.erase(cur);
      }
    }
  }
  for (const trace::SnapshotEntry& e : snapshot.entries) {
    switch (e.type) {
      case trace::SnapshotEntryType::kDir:
        MustMkdirAll(e.path);
        break;
      case trace::SnapshotEntryType::kFile: {
        if (delta && Exists(e.path) && FileSize(e.path) == e.size) {
          break;  // already in place
        }
        MustCreateFile(e.path, e.size);
        for (const std::string& x : e.xattr_names) {
          MustSetXattr(e.path, x, 16);
        }
        break;
      }
      case trace::SnapshotEntryType::kSymlink:
        if (!(delta && Exists(e.path))) {
          MustCreateSymlink(e.path, e.symlink_target);
        }
        break;
      case trace::SnapshotEntryType::kSpecial:
        MustCreateSpecial(e.path, e.special_kind);
        break;
    }
  }
  if (delta) {
    // Remove files present in the tree but absent from the snapshot.
    trace::FsSnapshot current = CaptureSnapshot();
    for (const trace::SnapshotEntry& e : current.entries) {
      if (e.type == trace::SnapshotEntryType::kFile && snapshot.Find(e.path) == nullptr) {
        ResolveOutcome r = Resolve(e.path, /*follow_last=*/false, /*timed=*/false);
        if (r.err == 0) {
          r.parent->children.erase(r.final_name);
          r.node->nlink = 0;
          UnrefInode(r.node->ino);
        }
      }
    }
  }
}

}  // namespace artc::vfs

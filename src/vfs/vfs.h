// Simulated POSIX file system at system-call granularity.
//
// This is the "kernel" that both the traced application models and the
// simulated replay backend execute against. It implements real UNIX
// namespace semantics (hard links, symlinks, rename over existing targets,
// orphaned-but-open files, lowest-free fd allocation) and charges virtual
// time through a StorageStack: directory and inode blocks are read through
// the page cache, data I/O maps file offsets to allocated extents, metadata
// mutations append to a journal whose commit policy depends on the
// file-system profile (ext4/ext3/jfs/xfs-like).
//
// All methods must be called from a simulated thread. Results use portable
// errno values from src/trace/event.h.
#ifndef SRC_VFS_VFS_H_
#define SRC_VFS_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/simulation.h"
#include "src/storage/storage_stack.h"
#include "src/trace/event.h"
#include "src/trace/snapshot.h"

namespace artc::vfs {

// Timing/layout personality of the file system. The four named profiles do
// not reimplement ext3/ext4/JFS/XFS; they differ in the cost dimensions that
// distinguish those file systems as replay targets (journaling policy,
// allocation contiguity, metadata CPU cost), which is what Fig. 7's 49
// source/target combinations need.
struct FsProfile {
  std::string name = "ext4";
  TimeNs meta_cpu = Us(3);        // CPU per metadata operation
  TimeNs lookup_cpu = Us(1);      // CPU per path component
  uint32_t journal_blocks_per_txn = 1;
  // ext3-ordered-mode-like behaviour: fsync flushes every dirty page in the
  // cache, not just the target file's.
  bool fsync_flushes_all_dirty = false;
  uint32_t alloc_chunk_blocks = 2048;  // delayed-allocation granularity
};

// "ext4", "ext3", "jfs", "xfs".
FsProfile MakeFsProfile(const std::string& name);

// OS personality knobs that the paper's emulation section cares about.
struct PlatformProfile {
  std::string name = "linux";
  // On Linux /dev/random blocks while the entropy pool refills; on OS X it
  // behaves like /dev/urandom (paper Sec. 5.1 "Special files").
  TimeNs dev_random_read = Ms(20);
  TimeNs dev_urandom_read = Us(3);
  // On OS X fsync only flushes to the device (which may cache); full
  // durability needs fcntl(F_FULLFSYNC). On Linux fsync is durable.
  bool fsync_is_device_flush_only = false;
};

PlatformProfile MakePlatformProfile(const std::string& name);  // "linux", "osx"

struct VfsResult {
  int64_t value = 0;  // success return value
  int err = 0;        // portable errno, 0 on success
  bool ok() const { return err == 0; }
  // Encodes as the single trace return value (>=0 or -errno).
  int64_t TraceRet() const { return err == 0 ? value : -err; }
};

// Receives one record per completed syscall while tracing is enabled.
class TraceRecorder {
 public:
  explicit TraceRecorder(trace::Trace* out) : out_(out) {}
  void Record(trace::TraceEvent ev);
  trace::Trace* trace() { return out_; }

 private:
  trace::Trace* out_;
};

class Vfs {
 public:
  Vfs(sim::Simulation* simulation, storage::StorageStack* stack, FsProfile fs_profile,
      PlatformProfile platform = PlatformProfile{});
  ~Vfs();
  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  // ---- namespace ----
  VfsResult Open(const std::string& path, uint32_t flags, uint32_t mode = 0644);
  VfsResult Close(int32_t fd);
  VfsResult Dup(int32_t fd);
  VfsResult Dup2(int32_t fd, int32_t newfd);
  VfsResult Mkdir(const std::string& path, uint32_t mode = 0755);
  VfsResult Rmdir(const std::string& path);
  VfsResult Unlink(const std::string& path);
  VfsResult Rename(const std::string& from, const std::string& to);
  VfsResult Link(const std::string& existing, const std::string& link);
  VfsResult Symlink(const std::string& target, const std::string& link);
  VfsResult Readlink(const std::string& path);

  // ---- data ----
  VfsResult Read(int32_t fd, uint64_t count);
  VfsResult Pread(int32_t fd, uint64_t count, int64_t offset);
  VfsResult Write(int32_t fd, uint64_t count);
  VfsResult Pwrite(int32_t fd, uint64_t count, int64_t offset);
  VfsResult Lseek(int32_t fd, int64_t offset, int whence);
  VfsResult Truncate(const std::string& path, uint64_t length);
  VfsResult Ftruncate(int32_t fd, uint64_t length);

  // ---- durability ----
  VfsResult Fsync(int32_t fd);
  VfsResult Fdatasync(int32_t fd);
  VfsResult FullFsync(int32_t fd);  // OS X fcntl(F_FULLFSYNC)
  VfsResult SyncAll();

  // ---- metadata ----
  VfsResult Stat(const std::string& path);   // value = file size
  VfsResult Lstat(const std::string& path);
  VfsResult Fstat(int32_t fd);
  VfsResult Access(const std::string& path);
  VfsResult StatFs(const std::string& path);
  VfsResult Chmod(const std::string& path, uint32_t mode);
  VfsResult Utimes(const std::string& path);
  VfsResult GetDirEntries(int32_t fd, uint64_t count);  // value = #entries

  // ---- extended attributes ----
  VfsResult GetXattr(const std::string& path, const std::string& name);
  VfsResult SetXattr(const std::string& path, const std::string& name, uint64_t size);
  VfsResult ListXattr(const std::string& path);
  VfsResult RemoveXattr(const std::string& path, const std::string& name);
  VfsResult FGetXattr(int32_t fd, const std::string& name);
  VfsResult FSetXattr(int32_t fd, const std::string& name, uint64_t size);

  // ---- hints ----
  VfsResult Fadvise(int32_t fd, int64_t offset, uint64_t len);     // read-ahead
  VfsResult Fallocate(int32_t fd, int64_t offset, uint64_t len);   // preallocate

  // ---- OS-X-native extras (available when simulating an OS X source) ----
  VfsResult ExchangeData(const std::string& a, const std::string& b);

  // ---- infrastructure ----

  // While enabled, every syscall above appends a TraceEvent to the recorder.
  void StartTracing(TraceRecorder* recorder) { recorder_ = recorder; }
  void StopTracing() { recorder_ = nullptr; }

  // Serialises the current tree (paths under root, sizes, symlinks, xattr
  // names) — what a tracing session would capture before the run.
  trace::FsSnapshot CaptureSnapshot() const;

  // Builds the tree described by the snapshot (initialization, Sec. 4.3.2).
  // Existing contents are discarded first unless delta is true, in which
  // case only differences are created/removed/resized (delta init).
  void RestoreSnapshot(const trace::FsSnapshot& snapshot, bool delta = false);

  // True if the path resolves to an existing node.
  bool Exists(const std::string& path);

  uint64_t FileSize(const std::string& path);

  // Direct (untimed) tree construction used by tests and workload setup.
  void MustMkdirAll(const std::string& path);
  void MustCreateFile(const std::string& path, uint64_t size);
  void MustCreateSymlink(const std::string& path, const std::string& target);
  void MustCreateSpecial(const std::string& path, const std::string& kind);
  void MustSetXattr(const std::string& path, const std::string& name, uint64_t size);

  storage::StorageStack& stack() { return *stack_; }
  const FsProfile& fs_profile() const { return fs_; }
  const PlatformProfile& platform() const { return platform_; }
  sim::Simulation* simulation() { return sim_; }

  // Journal blocks written since construction (diagnostics / tests).
  uint64_t JournalCommitBlocks() const { return journal_committed_blocks_; }

 private:
  struct Inode;
  struct OpenFile;
  struct ResolveOutcome;

  // Path walk. follow_last: dereference a trailing symlink. The budget
  // bounds total symlink hops across nested resolutions (ELOOP).
  ResolveOutcome Resolve(const std::string& path, bool follow_last, bool timed);
  ResolveOutcome ResolveWithBudget(const std::string& path, bool follow_last, bool timed,
                                   int* symlink_budget);

  Inode* GetInode(uint64_t ino);
  const Inode* GetInode(uint64_t ino) const;
  Inode* NewInode(uint8_t type);
  void UnrefInode(uint64_t ino);   // nlink/open bookkeeping; frees at zero
  void FreeInode(Inode* inode);

  void EnsureExtents(Inode* inode, uint64_t up_to_block);
  std::vector<std::pair<uint64_t, uint32_t>> MapRange(const Inode* inode, uint64_t block,
                                                      uint64_t nblocks) const;
  void ReadInodeBlock(const Inode* inode);   // metadata read through cache
  void DirtyInodeBlock(const Inode* inode);  // metadata write (cache)
  void ReadDirBlocks(Inode* dir);
  void TouchDirData(Inode* dir);
  void JournalAppend();            // buffer one metadata transaction
  void JournalCommit();            // write buffered txns + barrier
  void DeviceBarrier();

  int32_t AllocFd(std::shared_ptr<OpenFile> of);
  OpenFile* GetOpenFile(int32_t fd);

  // Trace recording helper: wraps a syscall body, stamping enter/ret times.
  template <typename Fn>
  VfsResult Traced(trace::Sys call, Fn&& body, trace::TraceEvent proto);

  // Untraced bodies shared by the positional and offset-cursor entry points
  // (read() is pread() at the cursor; recording must happen once, in the
  // public wrapper, never via mutation of recorder_ — simulated threads
  // interleave at blocking points).
  VfsResult PreadBody(int32_t fd, uint64_t count, int64_t offset);
  // append: reserve the offset at current EOF and extend the size *before*
  // blocking on I/O, so concurrent O_APPEND writers never overlap (POSIX
  // append atomicity).
  VfsResult PwriteBody(int32_t fd, uint64_t count, int64_t offset, bool append = false);

  sim::Simulation* sim_;
  storage::StorageStack* stack_;
  FsProfile fs_;
  PlatformProfile platform_;
  TraceRecorder* recorder_ = nullptr;

  std::unordered_map<uint64_t, std::unique_ptr<Inode>> inodes_;
  uint64_t next_ino_ = 1;
  uint64_t root_ino_ = 0;
  std::vector<std::shared_ptr<OpenFile>> fd_table_;

  // Block layout: [journal][inode table][data...].
  uint64_t journal_start_ = 0;
  uint64_t journal_blocks_ = 32768;
  uint64_t journal_head_ = 0;
  uint64_t inode_region_start_ = 0;
  uint64_t inode_region_blocks_ = 65536;
  uint64_t data_start_ = 0;
  uint64_t alloc_cursor_ = 0;
  uint64_t pending_journal_blocks_ = 0;
  uint64_t journal_committed_blocks_ = 0;
};

}  // namespace artc::vfs

#endif  // SRC_VFS_VFS_H_

// ASCII rendering of per-thread system-call timelines — the textual
// equivalent of Fig. 9's Gantt strips, where grey rectangles mark spans
// spent inside system calls and gaps mark ordering stalls.
#ifndef SRC_CORE_TIMELINE_H_
#define SRC_CORE_TIMELINE_H_

#include <string>

#include "src/core/compiled.h"
#include "src/core/report.h"

namespace artc::core {

struct TimelineOptions {
  size_t width = 100;        // columns for the time axis
  TimeNs window_start = 0;   // render [start, start+duration) of the replay
  TimeNs window_duration = 0;  // 0 = the whole replay
};

// One line per replay thread; '#' marks time inside a call, '.' idle.
std::string RenderTimeline(const CompiledBenchmark& bench, const ReplayReport& report,
                           const TimelineOptions& options = {});

// Renders the *original* program's timeline from its trace (enter/return
// timestamps), for side-by-side comparison with a replay.
std::string RenderTraceTimeline(const trace::Trace& t, const TimelineOptions& options = {});

}  // namespace artc::core

#endif  // SRC_CORE_TIMELINE_H_

// Suite-level compilation: compile many traces concurrently on a host
// thread pool. Each job is independent (the compiler shares no mutable
// state), so this is a straight data-parallel map — the building block the
// bench harnesses use to turn a 34-workload Magritte sweep into one
// ThreadPool dispatch instead of a serial loop.
#ifndef SRC_CORE_SUITE_H_
#define SRC_CORE_SUITE_H_

#include <vector>

#include "src/core/compiled.h"
#include "src/core/compiler.h"
#include "src/trace/event.h"
#include "src/trace/snapshot.h"
#include "src/util/thread_pool.h"

namespace artc::core {

// One compilation unit of a suite. The trace and snapshot are borrowed;
// they must outlive the CompileSuite call.
struct CompileJob {
  const trace::Trace* trace = nullptr;
  const trace::FsSnapshot* snapshot = nullptr;
  CompileOptions options;
};

// Compiles every job on `pool` (ParallelFor) and returns the benchmarks in
// job order. A null pool compiles serially on the calling thread — same
// results, no host threads. Results are positionally stable regardless of
// worker count or completion order.
std::vector<CompiledBenchmark> CompileSuite(const std::vector<CompileJob>& jobs,
                                            util::ThreadPool* pool);

}  // namespace artc::core

#endif  // SRC_CORE_SUITE_H_

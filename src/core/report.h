// Replay reports: the "detailed data about why a replay performed the way
// it did" from Sec. 4.3.3 — wall time, per-call latencies, semantic-accuracy
// accounting (return-value match), thread-time by call family (Fig. 10),
// and system-call concurrency (Fig. 9).
#ifndef SRC_CORE_REPORT_H_
#define SRC_CORE_REPORT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/compiled.h"
#include "src/trace/syscalls.h"
#include "src/util/stats.h"
#include "src/util/time.h"

namespace artc::core {

// Raw per-action replay result, filled by the engine.
struct ActionOutcome {
  TimeNs issue = 0;     // when the call was issued during replay
  TimeNs complete = 0;  // when it returned
  TimeNs wait_start = 0; // when the thread began checking dependencies
  TimeNs dep_stall = 0; // time spent waiting on ordering dependencies
  TimeNs storage_ns = 0; // of (complete - issue), time the storage stack served
  int64_t ret = 0;      // value or -errno, same convention as traces
  bool executed = false;
};

// One attributed interval of an action's dependency stall: during
// [begin, end) the action was blocked and `dep_index` (an index into the
// action's DepSpan) is the edge whose satisfaction lifted the running
// wait bound past `begin`. kUnattributedSlice marks residual wait with no
// responsible edge (host wake-up latency; zero in the virtual-time sim).
inline constexpr uint32_t kUnattributedSlice = UINT32_MAX;

struct StallSlice {
  uint32_t dep_index = kUnattributedSlice;
  TimeNs begin = 0;
  TimeNs end = 0;
};

// Decomposes outcomes[action].dep_stall into per-edge slices. The slices
// are disjoint, ordered, and exactly tile
// [wait_start, wait_start + dep_stall); an empty result means the action
// never stalled. Works from timestamps alone, so it can run on any
// finished replay without engine support.
void ComputeStallSlices(const CompiledBenchmark& bench, uint32_t action,
                        const std::vector<ActionOutcome>& outcomes,
                        std::vector<StallSlice>* out);

inline constexpr size_t kCategoryCount = 12;

struct ReplayReport {
  ReplayMethod method = ReplayMethod::kArtc;
  TimeNs wall_time = 0;
  uint64_t total_events = 0;

  // Semantic accuracy (Table 3): an event fails if its replayed return
  // class differs from the traced one (success vs. specific errno).
  uint64_t failed_events = 0;
  uint64_t failed_wrong_errno = 0;    // failed in both, different errno
  uint64_t failed_unexpected_ok = 0;  // traced failure, replay success
  uint64_t failed_unexpected_err = 0; // traced success, replay failure

  // Thread-time: total time spent inside calls, bucketed by family.
  std::array<TimeNs, kCategoryCount> thread_time_by_category{};
  TimeNs TotalThreadTime() const;

  // Concurrency: mean number of in-flight system calls over the replay
  // (thread-time / wall-time).
  double MeanConcurrency() const;

  // Per-call-type counts and latency sums.
  std::array<uint64_t, trace::kSysCount> count_by_sys{};
  std::array<TimeNs, trace::kSysCount> time_by_sys{};

  // Total time replay threads spent blocked on ordering dependencies — the
  // "stalls" visible as gaps in Fig. 9's timelines.
  TimeNs total_dep_stall = 0;

  // total_dep_stall broken out by the rule that emitted the blocking edge
  // (per-slice attribution via ComputeStallSlices, so the buckets sum to
  // total_dep_stall minus dep_stall_unattributed).
  std::array<TimeNs, static_cast<size_t>(RuleTag::kCount)> dep_stall_by_rule{};
  TimeNs dep_stall_unattributed = 0;  // wake-up latency with no blocking edge

  // The five resources behind the most attributed stall (name, total ns),
  // descending. Names come from CompiledBenchmark::dep_resource_names.
  std::vector<std::pair<std::string, TimeNs>> top_stall_resources;

  // Share of replay-thread time spent stalled on dependencies:
  // stall / (stall + in-call thread time). High values mean the dependency
  // graph, not the target hardware, bounds the replay.
  double DepStallShare() const;

  // Per-call latency histogram (ns), log-spaced 100 ns .. 100 s, filled by
  // BuildReport from executed actions. Percentile queries interpolate
  // within buckets (Histogram::Quantile).
  static std::vector<double> LatencyBounds();
  artc::Histogram call_latency{LatencyBounds()};

  std::vector<ActionOutcome> outcomes;  // per trace index

  std::string Summary() const;  // human-readable one-pager
};

// Builds the aggregate report from raw outcomes.
ReplayReport BuildReport(const CompiledBenchmark& bench,
                         std::vector<ActionOutcome> outcomes, TimeNs wall_time);

// True if the replayed return matches the traced return semantically.
bool OutcomeMatches(const trace::TraceEvent& ev, int64_t replay_ret);

}  // namespace artc::core

#endif  // SRC_CORE_REPORT_H_

#include "src/core/timeline.h"

#include <algorithm>
#include <map>
#include <vector>

#include "src/util/strings.h"

namespace artc::core {
namespace {

struct Span {
  uint32_t row;
  TimeNs begin;
  TimeNs end;
};

std::string Render(const std::vector<Span>& spans, const std::vector<std::string>& labels,
                   TimeNs start, TimeNs duration, size_t width) {
  if (duration <= 0) {
    TimeNs max_end = 0;
    for (const Span& s : spans) {
      max_end = std::max(max_end, s.end);
    }
    duration = std::max<TimeNs>(1, max_end - start);
  }
  std::vector<std::string> rows(labels.size(), std::string(width, '.'));
  for (const Span& s : spans) {
    TimeNs b = std::max(s.begin, start);
    TimeNs e = std::min(s.end, start + duration);
    if (e <= b) {
      continue;
    }
    size_t c0 = static_cast<size_t>((b - start) * static_cast<TimeNs>(width) / duration);
    size_t c1 = static_cast<size_t>((e - start) * static_cast<TimeNs>(width) / duration);
    c1 = std::min(c1 + 1, width);
    for (size_t c = c0; c < c1; ++c) {
      rows[s.row][c] = '#';
    }
  }
  std::string out;
  for (size_t i = 0; i < rows.size(); ++i) {
    out += StrFormat("%-12s |%s|\n", labels[i].c_str(), rows[i].c_str());
  }
  out += StrFormat("%-12s  %.3fs%*s%.3fs\n", "", ToSeconds(start),
                   static_cast<int>(width > 12 ? width - 12 : 1), "",
                   ToSeconds(start + duration));
  return out;
}

}  // namespace

std::string RenderTimeline(const CompiledBenchmark& bench, const ReplayReport& report,
                           const TimelineOptions& options) {
  std::vector<Span> spans;
  TimeNs t0 = INT64_MAX;
  for (size_t i = 0; i < bench.actions.size(); ++i) {
    const ActionOutcome& out = report.outcomes[i];
    if (out.executed) {
      t0 = std::min(t0, out.issue);
    }
  }
  if (t0 == INT64_MAX) {
    t0 = 0;
  }
  for (size_t i = 0; i < bench.actions.size(); ++i) {
    const ActionOutcome& out = report.outcomes[i];
    if (out.executed) {
      spans.push_back({bench.actions[i].thread_index, out.issue - t0, out.complete - t0});
    }
  }
  std::vector<std::string> labels;
  labels.reserve(bench.thread_ids.size());
  for (uint32_t tid : bench.thread_ids) {
    labels.push_back(StrFormat("thread %u", tid));
  }
  return Render(spans, labels, options.window_start,
                options.window_duration, options.width);
}

std::string RenderTraceTimeline(const trace::Trace& t, const TimelineOptions& options) {
  std::map<uint32_t, uint32_t> row_of;
  std::vector<std::string> labels;
  for (uint32_t tid : t.ThreadIds()) {
    row_of[tid] = static_cast<uint32_t>(labels.size());
    labels.push_back(StrFormat("thread %u", tid));
  }
  TimeNs t0 = t.events.empty() ? 0 : t.events.front().enter;
  std::vector<Span> spans;
  spans.reserve(t.events.size());
  for (const trace::TraceEvent& ev : t.events) {
    spans.push_back({row_of[ev.tid], ev.enter - t0, ev.ret_time - t0});
  }
  return Render(spans, labels, options.window_start, options.window_duration,
                options.width);
}

}  // namespace artc::core

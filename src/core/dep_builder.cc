#include "src/core/dep_builder.h"

#include <algorithm>
#include <string>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace artc::core::internal {

using fsmodel::Access;
using fsmodel::kNoResource;
using fsmodel::ResourceKind;

void DepBuilder::ArtcTouch(const fsmodel::Touch& touch,
                           const ReplayModes& modes) {
  if (cursors_.size() <= touch.resource) {
    cursors_.resize(resources_.size());
  }
  const fsmodel::ResourceInfo& res = resources_[touch.resource];
  Cursor& c = cursors_[touch.resource];
  cur_touch_res_ = touch.resource;
  switch (res.kind) {
    case ResourceKind::kFile:
      if (modes.file_seq) {
        Sequential(c, RuleTag::kFileSeq);
      }
      break;
    case ResourceKind::kPath:
      if (modes.path_stage_name) {
        NameOrdering(res, c, RuleTag::kPathName);
        Stage(c, touch.access, RuleTag::kPathStage);
      }
      break;
    case ResourceKind::kFd:
      if (modes.fd_seq) {
        Sequential(c, RuleTag::kFdSeq);
      } else if (modes.fd_stage) {
        Stage(c, touch.access, RuleTag::kFdStage);
      }
      break;
    case ResourceKind::kAiocb:
      if (modes.aio_stage) {
        Stage(c, touch.access, RuleTag::kAioStage);
      }
      break;
    case ResourceKind::kThread:
      if (c.touched && c.last_event != kNoEvent) {
        if (ThreadOf(c.last_event) == ThreadOf(cur_event_)) {
          // Structural (each replay thread plays its actions in order);
          // counted for edge statistics without materialising a dep.
          CountEdge(RuleTag::kThreadSeq, c.last_event);
        } else if (modes.sync_rules) {
          // A cross-thread touch of a thread resource is a join (or an
          // action following one): the toucher waits for the thread's
          // last recorded action to complete.
          AddDep(c.last_event, DepKind::kCompletion, RuleTag::kJoin);
        }
      }
      break;
    case ResourceKind::kMutex:
      if (modes.sync_rules) {
        // Name ordering chains critical sections (unlock -> next lock);
        // stage covers a generation retired by a different thread
        // (unlock-from-elsewhere waits on the lock).
        NameOrdering(res, c, RuleTag::kMutex);
        Stage(c, touch.access, RuleTag::kMutex);
      }
      break;
    case ResourceKind::kBarrier:
      if (modes.sync_rules) {
        // Stage gives arrivals a dep on the phase opener and the pivot a
        // fan-in over every earlier arrival; name ordering chains phase
        // generations (pivot -> next phase's first arrival).
        NameOrdering(res, c, RuleTag::kBarrier);
        Stage(c, touch.access, RuleTag::kBarrier);
      }
      break;
    case ResourceKind::kCond:
      if (modes.sync_rules) {
        // Wakeup tokens carry no name ordering on purpose: concurrent
        // signals must not serialize against each other.
        Stage(c, touch.access, RuleTag::kCond);
      }
      break;
    case ResourceKind::kProgram:
      break;
  }
  Update(c, touch.access);
}

void DepBuilder::Sequential(Cursor& c, RuleTag rule) {
  if (c.touched && c.last_event != kNoEvent && c.last_event != cur_event_) {
    AddDep(c.last_event, DepKind::kCompletion, rule);
  }
}

void DepBuilder::Stage(Cursor& c, Access access, RuleTag rule) {
  if (access != Access::kCreate && c.create_event != kNoEvent &&
      c.create_event != cur_event_) {
    uint32_t thread = ThreadOf(cur_event_);
    bool seen = false;
    for (uint32_t t : c.create_waiters) {
      if (t == thread) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      AddDep(c.create_event, DepKind::kCompletion, rule);
      c.create_waiters.push_back(thread);
    }
  }
  if (access == Access::kDelete) {
    for (const auto& [thread, use] : c.last_use_by_thread) {
      if (use != cur_event_) {
        AddDep(use, DepKind::kCompletion, rule);
      }
    }
  }
}

void DepBuilder::NameOrdering(const fsmodel::ResourceInfo& res,
                              const Cursor& c, RuleTag rule) {
  if (c.touched || res.prev_generation == kNoResource) {
    return;  // only the first action of a generation gets the edge
  }
  const Cursor& prev = cursors_[res.prev_generation];
  if (prev.last_event != kNoEvent && prev.last_event != cur_event_) {
    AddDep(prev.last_event, DepKind::kCompletion, rule);
  }
}

void DepBuilder::Update(Cursor& c, Access access) {
  c.touched = true;
  switch (access) {
    case Access::kCreate:
      c.create_event = cur_event_;
      c.last_use_by_thread.clear();
      c.create_waiters.clear();
      break;
    case Access::kUse: {
      uint32_t thread = ThreadOf(cur_event_);
      bool found = false;
      for (auto& [t, use] : c.last_use_by_thread) {
        if (t == thread) {
          use = cur_event_;
          found = true;
          break;
        }
      }
      if (!found) {
        c.last_use_by_thread.push_back({thread, cur_event_});
      }
      break;
    }
    case Access::kDelete:
      break;
  }
  c.last_event = cur_event_;
}

std::vector<Dep>::iterator DepBuilder::LowerBound(uint32_t dep_event) {
  return std::lower_bound(scratch_.begin(), scratch_.end(), dep_event,
                          [](const Dep& d, uint32_t e) { return d.event < e; });
}

void DepBuilder::AddDep(uint32_t dep_event, DepKind kind, RuleTag rule) {
  ARTC_CHECK(dep_event < cur_event_);
  // A completion-dep on an earlier action of the same replay thread is
  // enforced structurally (threads play their actions in order): skip it.
  // Temporal issue-order deps are kept as-is.
  if (kind == DepKind::kCompletion && rule != RuleTag::kTemporal &&
      ThreadOf(dep_event) == ThreadOf(cur_event_)) {
    return;
  }
  // Scratch stays sorted by event, so dedup is an insertion-point check
  // instead of a scan over every dep added so far. Keep the stronger
  // kind on collision.
  auto it = LowerBound(dep_event);
  if (it != scratch_.end() && it->event == dep_event) {
    if (kind == DepKind::kCompletion && it->kind == DepKind::kIssue) {
      it->kind = kind;
    }
    return;
  }
  scratch_.insert(it, {dep_event, kind, rule, CompactRes(cur_touch_res_)});
  CountEdge(rule, dep_event);
}

uint32_t DepBuilder::CompactRes(uint32_t raw) {
  if (raw == kNoResource) {
    return kNoDepResource;
  }
  // Maps the annotator's per-generation resource id to a compact
  // attribution id shared by every generation of the same underlying name
  // (keyed by kind + ResourceInfo::name_id), materialising a human-readable
  // name on first use. Only resources that produce a materialised edge get
  // an entry, so the table stays proportional to the edge set.
  if (res_compact_.size() < resources_.size()) {
    res_compact_.resize(resources_.size(), 0);
  }
  if (res_compact_[raw] != 0) {
    return res_compact_[raw] - 1;
  }
  const fsmodel::ResourceInfo& info = resources_[raw];
  uint32_t compact;
  if (info.name_id != kNoResource) {
    // Share one id across generations of the same name.
    uint64_t key = (static_cast<uint64_t>(info.kind) << 32) | info.name_id;
    auto [it, inserted] = key_to_compact_.try_emplace(key, 0);
    if (inserted) {
      it->second = NewCompactName(info, raw);
    }
    compact = it->second;
  } else {
    compact = NewCompactName(info, raw);
  }
  res_compact_[raw] = compact + 1;
  return compact;
}

uint32_t DepBuilder::NewCompactName(const fsmodel::ResourceInfo& info,
                                    uint32_t raw) {
  std::string name;
  switch (info.kind) {
    case ResourceKind::kPath:
      if (path_names_ != nullptr && info.name_id != kNoResource) {
        name = std::string(path_names_->View(info.name_id));
      } else {
        name = StrFormat("path#%u", raw);
      }
      break;
    case ResourceKind::kFd:
      name = StrFormat("fd:%u", info.name_id);
      break;
    case ResourceKind::kFile:
      name = StrFormat("file#%u", info.name_id);
      break;
    case ResourceKind::kThread:
      name = StrFormat("thread:%u", info.name_id);
      break;
    case ResourceKind::kAiocb:
      name = StrFormat("aio:%u", info.name_id);
      break;
    case ResourceKind::kMutex:
      name = StrFormat("mutex:%u", info.name_id);
      break;
    case ResourceKind::kBarrier:
      name = StrFormat("barrier:%u", info.name_id);
      break;
    case ResourceKind::kCond:
      name = StrFormat("cond:%u", info.name_id);
      break;
    case ResourceKind::kProgram:
      name = "program";
      break;
  }
  if (name.empty()) {
    name = StrFormat("res#%u", raw);
  }
  names_->push_back(std::move(name));
  return static_cast<uint32_t>(names_->size() - 1);
}

void DepBuilder::AddInfraDep(uint32_t def_event) {
  if (def_event == kNoEvent || def_event >= cur_event_ ||
      ThreadOf(def_event) == ThreadOf(cur_event_)) {
    return;
  }
  auto it = LowerBound(def_event);
  if (it != scratch_.end() && it->event == def_event) {
    it->kind = DepKind::kCompletion;
    return;
  }
  scratch_.insert(it, {def_event, DepKind::kCompletion, RuleTag::kTemporal});
}

void DepBuilder::CountEdge(RuleTag rule, uint32_t dep_event) {
  size_t idx = static_cast<size_t>(rule);
  stats_->count_by_rule[idx]++;
  // Edge length: time between the two actions in the original trace.
  TimeNs len = meta_.enter[cur_event_] - meta_.enter[dep_event];
  stats_->total_length_ns[idx] += static_cast<double>(len);
}

uint32_t DepPruner::PruneEvent(uint32_t i, uint32_t ti, Dep* deps,
                               uint32_t count) {
  ARTC_CHECK(row_of_.size() == i);
  if (cur_row_.size() <= ti) {
    cur_row_.resize(ti + 1, 0);
  }
  bool merges = false;
  for (uint32_t j = 0; j < count && !merges; ++j) {
    merges = deps[j].kind == DepKind::kCompletion;
  }
  if (!merges) {
    // Issue deps are never pruned (only completion deps can be implied)
    // and don't advance the completion clock: keep them and move on.
    row_of_.push_back(cur_row_[ti]);
    return count;
  }
  // cur_row_[ti] is the clock of i's same-thread predecessor p: cross-
  // thread entries only change at merge events, and the latest one on ti
  // is at or before p. If i is the first event on ti this is row 0 (all
  // zeros), which correctly implies nothing.
  const uint32_t pred = cur_row_[ti];
  const uint32_t width = static_cast<uint32_t>(cur_row_.size());
  const uint32_t nr_id = static_cast<uint32_t>(row_off_.size());
  const uint32_t nr_off = static_cast<uint32_t>(rows_.size());
  rows_.resize(rows_.size() + width);
  row_off_.push_back(nr_off);
  row_width_.push_back(width);
  for (uint32_t t = 0; t < width; ++t) {
    rows_[nr_off + t] = RowVal(pred, t);
  }
  uint32_t write = 0;
  for (uint32_t j = 0; j < count; ++j) {
    const Dep d = deps[j];
    if (d.kind != DepKind::kCompletion) {
      deps[write++] = d;
      continue;
    }
    // Materialised completion deps are always cross-thread (same-thread
    // ones are skipped at emission), so td != ti here. The implied-ness
    // test runs against the *pristine* predecessor clock, never the row
    // being accumulated: sibling deps must not imply each other.
    const uint32_t td = meta_.thread_index[d.event];
    if (RowVal(pred, td) >= d.event + 1) {
      stats_->pruned_by_rule[static_cast<size_t>(d.rule)]++;
    } else {
      deps[write++] = d;
    }
    // Whether kept or implied, d is complete before i issues: merge its
    // completion clock (row entries plus its implicit own entry).
    const uint32_t dr = row_of_[d.event];
    const uint32_t dw = row_width_[dr];
    const uint32_t dr_off = row_off_[dr];
    for (uint32_t t = 0; t < dw; ++t) {
      rows_[nr_off + t] = std::max(rows_[nr_off + t], rows_[dr_off + t]);
    }
    rows_[nr_off + td] = std::max(rows_[nr_off + td], d.event + 1);
  }
  cur_row_[ti] = nr_id;
  row_of_.push_back(nr_id);
  return write;
}

uint64_t DepBuilder::state_bytes() const {
  uint64_t n = cursors_.capacity() * sizeof(Cursor) +
               res_compact_.capacity() * sizeof(uint32_t) +
               key_to_compact_.size() * (sizeof(uint64_t) + sizeof(uint32_t)) +
               scratch_.capacity() * sizeof(Dep);
  for (const Cursor& c : cursors_) {
    n += c.last_use_by_thread.capacity() * sizeof(std::pair<uint32_t, uint32_t>) +
         c.create_waiters.capacity() * sizeof(uint32_t);
  }
  return n;
}

}  // namespace artc::core::internal

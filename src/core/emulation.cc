#include "src/core/emulation.h"

namespace artc::core {

EmulationRule GetEmulationRule(trace::Sys call, const std::string& target_os) {
  using trace::Sys;
  const bool osx = target_os == "osx";
  const bool freebsd = target_os == "freebsd";
  if (!trace::GetSysInfo(call).osx_specific) {
    return {EmulationAction::kNative, Sys::kCount};
  }
  if (osx) {
    return {EmulationAction::kNative, Sys::kCount};
  }
  switch (call) {
    // Metadata-access APIs: emulate with the closest stat/xattr/dir call,
    // ignoring option flags the target doesn't support.
    case Sys::kGetAttrList:
      return {EmulationAction::kSubstitute, Sys::kStat};
    case Sys::kSetAttrList:
      return {EmulationAction::kSubstitute, Sys::kUtimes};
    case Sys::kGetDirEntriesAttr:
      return {EmulationAction::kSubstitute, Sys::kGetDirEntries};
    case Sys::kSearchFs:
      return {EmulationAction::kSubstitute, Sys::kGetDirEntries};
    case Sys::kGetXattrOsx:
      return {EmulationAction::kSubstitute, Sys::kGetXattr};
    case Sys::kSetXattrOsx:
      return {EmulationAction::kSubstitute, Sys::kSetXattr};
    case Sys::kFGetXattrOsx:
      return {EmulationAction::kSubstitute, Sys::kFGetXattr};
    case Sys::kFSetXattrOsx:
      return {EmulationAction::kSubstitute, Sys::kFSetXattr};
    case Sys::kListXattrOsx:
      return {EmulationAction::kSubstitute, Sys::kListXattr};
    case Sys::kRemoveXattrOsx:
      return {EmulationAction::kSubstitute, Sys::kRemoveXattr};
    case Sys::kFsCtl:
      return {EmulationAction::kSubstitute, Sys::kStatFs};
    // File-system hints: prefetch/preallocate/cache-bypass map to the
    // target's hints; FreeBSD lacks some of these entirely.
    case Sys::kFcntlRdAdvise:
      return freebsd ? EmulationRule{EmulationAction::kIgnore, Sys::kCount}
                     : EmulationRule{EmulationAction::kSubstitute, Sys::kFadvise};
    case Sys::kFcntlPreallocate:
      return freebsd ? EmulationRule{EmulationAction::kIgnore, Sys::kCount}
                     : EmulationRule{EmulationAction::kSubstitute, Sys::kFallocate};
    case Sys::kFcntlNoCache:
      return {EmulationAction::kIgnore, Sys::kCount};
    // Durability: F_FULLFSYNC becomes a plain (durable) fsync elsewhere.
    case Sys::kFcntlFullFsync:
      return {EmulationAction::kSubstitute, Sys::kFsync};
    // Undocumented metadata-related calls: emulate with small metadata
    // accesses.
    case Sys::kOsxUndoc1:
    case Sys::kOsxUndoc2:
      return {EmulationAction::kSubstitute, Sys::kStat};
    case Sys::kOsxUndoc3:
      return {EmulationAction::kSubstitute, Sys::kListXattr};
    // The atomic swap has no single-call equivalent: link + two renames.
    case Sys::kExchangeData:
      return {EmulationAction::kSequence, Sys::kCount};
    default:
      return {EmulationAction::kIgnore, Sys::kCount};
  }
}

}  // namespace artc::core

#include "src/core/report.h"

#include <algorithm>

#include "src/util/strings.h"

namespace artc::core {

void ComputeStallSlices(const CompiledBenchmark& bench, uint32_t action,
                        const std::vector<ActionOutcome>& outcomes,
                        std::vector<StallSlice>* out) {
  out->clear();
  const ActionOutcome& a = outcomes[action];
  if (a.dep_stall <= 0) {
    return;
  }
  const TimeNs lo = a.wait_start;
  const TimeNs hi = a.wait_start + a.dep_stall;
  // Running max over the dependencies' satisfaction times: a dep whose
  // satisfaction lies past the current bound was the blocking edge for the
  // interval between the bound and its satisfaction. In the virtual-time
  // sim the final bound equals hi exactly (woken threads run before time
  // advances); on a host clock the residual wake-up latency lands in a
  // trailing unattributed slice.
  TimeNs m = lo;
  const DepSpan deps = bench.DepsFor(action);
  for (uint32_t di = 0; di < deps.size(); ++di) {
    const Dep& d = deps[di];
    const ActionOutcome& dep_out = outcomes[d.event];
    const TimeNs satisfy =
        d.kind == DepKind::kIssue ? dep_out.issue : dep_out.complete;
    if (satisfy > m) {
      const TimeNs end = std::min(satisfy, hi);
      out->push_back({di, m, end});
      m = end;
      if (m >= hi) {
        return;
      }
    }
  }
  if (m < hi) {
    out->push_back({kUnattributedSlice, m, hi});
  }
}

bool OutcomeMatches(const trace::TraceEvent& ev, int64_t replay_ret) {
  bool traced_ok = ev.ret >= 0;
  bool replay_ok = replay_ret >= 0;
  if (traced_ok != replay_ok) {
    return false;
  }
  if (!traced_ok) {
    return ev.ret == replay_ret;  // same errno
  }
  switch (ev.call) {
    case trace::Sys::kOpen:
    case trace::Sys::kCreat:
    case trace::Sys::kShmOpen:
    case trace::Sys::kDup:
    case trace::Sys::kDup2:
      return true;  // fd values are remapped; any success matches
    case trace::Sys::kRead:
    case trace::Sys::kPRead:
    case trace::Sys::kWrite:
    case trace::Sys::kPWrite:
      return ev.ret == replay_ret;  // byte counts must match
    default:
      return true;  // success-class match is enough for metadata calls
  }
}

TimeNs ReplayReport::TotalThreadTime() const {
  TimeNs total = 0;
  for (TimeNs t : thread_time_by_category) {
    total += t;
  }
  return total;
}

double ReplayReport::MeanConcurrency() const {
  if (wall_time <= 0) {
    return 0;
  }
  return static_cast<double>(TotalThreadTime()) / static_cast<double>(wall_time);
}

double ReplayReport::DepStallShare() const {
  const double stall = static_cast<double>(total_dep_stall);
  const double busy = static_cast<double>(TotalThreadTime());
  return stall + busy > 0 ? stall / (stall + busy) : 0.0;
}

std::vector<double> ReplayReport::LatencyBounds() {
  // Eight buckets per decade from 100 ns to 100 s keeps interpolated
  // percentiles within ~15% of the true order statistic.
  std::vector<double> bounds;
  double b = 100.0;
  while (b < 1e11) {
    bounds.push_back(b);
    b *= 1.333521432163324;  // 10^(1/8)
  }
  return bounds;
}

ReplayReport BuildReport(const CompiledBenchmark& bench,
                         std::vector<ActionOutcome> outcomes, TimeNs wall_time) {
  ReplayReport report;
  report.method = bench.method;
  report.wall_time = wall_time;
  report.total_events = bench.actions.size();
  for (uint32_t i = 0; i < bench.actions.size(); ++i) {
    const trace::TraceEvent& ev = bench.events[i];
    const ActionOutcome& out = outcomes[i];
    if (!out.executed) {
      report.failed_events++;
      continue;
    }
    if (!OutcomeMatches(ev, out.ret)) {
      report.failed_events++;
      bool traced_ok = ev.ret >= 0;
      bool replay_ok = out.ret >= 0;
      if (traced_ok && !replay_ok) {
        report.failed_unexpected_err++;
      } else if (!traced_ok && replay_ok) {
        report.failed_unexpected_ok++;
      } else {
        report.failed_wrong_errno++;
      }
    }
    TimeNs dur = out.complete - out.issue;
    report.call_latency.Add(static_cast<double>(dur));
    size_t cat = static_cast<size_t>(trace::GetSysInfo(ev.call).category);
    report.thread_time_by_category[cat] += dur;
    report.total_dep_stall += out.dep_stall;
    report.count_by_sys[static_cast<size_t>(ev.call)]++;
    report.time_by_sys[static_cast<size_t>(ev.call)] += dur;
  }
  // Attribute stall time to the edges (hence rules and resources) that
  // caused it, slice by slice.
  std::vector<TimeNs> stall_by_res(bench.dep_resource_names.size(), 0);
  std::vector<StallSlice> slices;
  for (uint32_t i = 0; i < bench.actions.size(); ++i) {
    if (outcomes[i].dep_stall <= 0) {
      continue;
    }
    ComputeStallSlices(bench, i, outcomes, &slices);
    const DepSpan deps = bench.DepsFor(i);
    for (const StallSlice& s : slices) {
      const TimeNs dur = s.end - s.begin;
      if (s.dep_index == kUnattributedSlice) {
        report.dep_stall_unattributed += dur;
        continue;
      }
      const Dep& d = deps[s.dep_index];
      report.dep_stall_by_rule[static_cast<size_t>(d.rule)] += dur;
      if (d.res < stall_by_res.size()) {
        stall_by_res[d.res] += dur;
      }
    }
  }
  std::vector<uint32_t> order;
  for (uint32_t r = 0; r < stall_by_res.size(); ++r) {
    if (stall_by_res[r] > 0) {
      order.push_back(r);
    }
  }
  const size_t top = std::min<size_t>(5, order.size());
  std::partial_sort(order.begin(), order.begin() + top, order.end(),
                    [&](uint32_t a, uint32_t b) {
                      return stall_by_res[a] != stall_by_res[b]
                                 ? stall_by_res[a] > stall_by_res[b]
                                 : a < b;
                    });
  order.resize(top);
  for (uint32_t r : order) {
    report.top_stall_resources.emplace_back(bench.DepResourceName(r),
                                            stall_by_res[r]);
  }
  report.outcomes = std::move(outcomes);
  return report;
}

std::string ReplayReport::Summary() const {
  std::string s = StrFormat(
      "method=%s events=%llu failures=%llu (err->%llu ok->%llu errno->%llu) "
      "wall=%.3fs threadtime=%.3fs concurrency=%.2f dep_stall=%.1f%%",
      ReplayMethodName(method), static_cast<unsigned long long>(total_events),
      static_cast<unsigned long long>(failed_events),
      static_cast<unsigned long long>(failed_unexpected_err),
      static_cast<unsigned long long>(failed_unexpected_ok),
      static_cast<unsigned long long>(failed_wrong_errno), ToSeconds(wall_time),
      ToSeconds(TotalThreadTime()), MeanConcurrency(), 100.0 * DepStallShare());
  if (call_latency.Total() > 0) {
    s += StrFormat(" latency_us p50=%.1f p95=%.1f p99=%.1f",
                   call_latency.Quantile(0.50) / 1000.0,
                   call_latency.Quantile(0.95) / 1000.0,
                   call_latency.Quantile(0.99) / 1000.0);
  }
  if (total_dep_stall > 0) {
    s += "\n  stall by rule:";
    for (size_t i = 0; i < dep_stall_by_rule.size(); ++i) {
      if (dep_stall_by_rule[i] > 0) {
        s += StrFormat(" %s=%.3fs", RuleTagName(static_cast<RuleTag>(i)),
                       ToSeconds(dep_stall_by_rule[i]));
      }
    }
    if (dep_stall_unattributed > 0) {
      s += StrFormat(" unattributed=%.3fs", ToSeconds(dep_stall_unattributed));
    }
  }
  if (!top_stall_resources.empty()) {
    s += "\n  top stall resources:";
    for (const auto& [name, ns] : top_stall_resources) {
      s += StrFormat(" %s=%.3fs", name.c_str(), ToSeconds(ns));
    }
  }
  return s;
}

}  // namespace artc::core

#include "src/core/report.h"

#include "src/util/strings.h"

namespace artc::core {

bool OutcomeMatches(const trace::TraceEvent& ev, int64_t replay_ret) {
  bool traced_ok = ev.ret >= 0;
  bool replay_ok = replay_ret >= 0;
  if (traced_ok != replay_ok) {
    return false;
  }
  if (!traced_ok) {
    return ev.ret == replay_ret;  // same errno
  }
  switch (ev.call) {
    case trace::Sys::kOpen:
    case trace::Sys::kCreat:
    case trace::Sys::kShmOpen:
    case trace::Sys::kDup:
    case trace::Sys::kDup2:
      return true;  // fd values are remapped; any success matches
    case trace::Sys::kRead:
    case trace::Sys::kPRead:
    case trace::Sys::kWrite:
    case trace::Sys::kPWrite:
      return ev.ret == replay_ret;  // byte counts must match
    default:
      return true;  // success-class match is enough for metadata calls
  }
}

TimeNs ReplayReport::TotalThreadTime() const {
  TimeNs total = 0;
  for (TimeNs t : thread_time_by_category) {
    total += t;
  }
  return total;
}

double ReplayReport::MeanConcurrency() const {
  if (wall_time <= 0) {
    return 0;
  }
  return static_cast<double>(TotalThreadTime()) / static_cast<double>(wall_time);
}

double ReplayReport::DepStallShare() const {
  const double stall = static_cast<double>(total_dep_stall);
  const double busy = static_cast<double>(TotalThreadTime());
  return stall + busy > 0 ? stall / (stall + busy) : 0.0;
}

std::vector<double> ReplayReport::LatencyBounds() {
  // Eight buckets per decade from 100 ns to 100 s keeps interpolated
  // percentiles within ~15% of the true order statistic.
  std::vector<double> bounds;
  double b = 100.0;
  while (b < 1e11) {
    bounds.push_back(b);
    b *= 1.333521432163324;  // 10^(1/8)
  }
  return bounds;
}

ReplayReport BuildReport(const CompiledBenchmark& bench,
                         std::vector<ActionOutcome> outcomes, TimeNs wall_time) {
  ReplayReport report;
  report.method = bench.method;
  report.wall_time = wall_time;
  report.total_events = bench.actions.size();
  for (uint32_t i = 0; i < bench.actions.size(); ++i) {
    const trace::TraceEvent& ev = bench.events[i];
    const ActionOutcome& out = outcomes[i];
    if (!out.executed) {
      report.failed_events++;
      continue;
    }
    if (!OutcomeMatches(ev, out.ret)) {
      report.failed_events++;
      bool traced_ok = ev.ret >= 0;
      bool replay_ok = out.ret >= 0;
      if (traced_ok && !replay_ok) {
        report.failed_unexpected_err++;
      } else if (!traced_ok && replay_ok) {
        report.failed_unexpected_ok++;
      } else {
        report.failed_wrong_errno++;
      }
    }
    TimeNs dur = out.complete - out.issue;
    report.call_latency.Add(static_cast<double>(dur));
    size_t cat = static_cast<size_t>(trace::GetSysInfo(ev.call).category);
    report.thread_time_by_category[cat] += dur;
    report.total_dep_stall += out.dep_stall;
    report.count_by_sys[static_cast<size_t>(ev.call)]++;
    report.time_by_sys[static_cast<size_t>(ev.call)] += dur;
  }
  report.outcomes = std::move(outcomes);
  return report;
}

std::string ReplayReport::Summary() const {
  std::string s = StrFormat(
      "method=%s events=%llu failures=%llu (err->%llu ok->%llu errno->%llu) "
      "wall=%.3fs threadtime=%.3fs concurrency=%.2f dep_stall=%.1f%%",
      ReplayMethodName(method), static_cast<unsigned long long>(total_events),
      static_cast<unsigned long long>(failed_events),
      static_cast<unsigned long long>(failed_unexpected_err),
      static_cast<unsigned long long>(failed_unexpected_ok),
      static_cast<unsigned long long>(failed_wrong_errno), ToSeconds(wall_time),
      ToSeconds(TotalThreadTime()), MeanConcurrency(), 100.0 * DepStallShare());
  if (call_latency.Total() > 0) {
    s += StrFormat(" latency_us p50=%.1f p95=%.1f p99=%.1f",
                   call_latency.Quantile(0.50) / 1000.0,
                   call_latency.Quantile(0.95) / 1000.0,
                   call_latency.Quantile(0.99) / 1000.0);
  }
  return s;
}

}  // namespace artc::core

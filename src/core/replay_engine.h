// The replay engine (paper Sec. 4.3.3), templated over a backend
// environment so the same enforcement logic drives both the simulated
// kernel (virtual time, used by all performance experiments) and real POSIX
// syscalls (host file system).
//
// Enforcement follows the paper: each action has an issued flag and a done
// flag; replay threads walk their own action lists in order, wait on each
// dependency's flag through a striped condition-variable table, optionally
// sleep the recorded predelay, execute, and broadcast completion.
//
// Env concept:
//   TimeNs Now();
//   void RunThreads(size_t n, std::function<void(size_t)> body);
//   void SleepNs(TimeNs d);                       // from a replay thread
//   void WaitOn(uint32_t idx, Pred pred);         // block until pred()
//   void Notify(uint32_t idx);                    // wake idx's stripe
//   int64_t Execute(const trace::TraceEvent& ev, const ExecContext& ctx);
//   (Execute returns the action's trace-convention result; for fd/aio
//    creating calls the non-negative result is the runtime handle.)
#ifndef SRC_CORE_REPLAY_ENGINE_H_
#define SRC_CORE_REPLAY_ENGINE_H_

#include <atomic>
#include <functional>
#include <vector>

#include "src/core/compiled.h"
#include "src/core/report.h"
#include "src/obs/obs.h"
#include "src/trace/syscalls.h"

namespace artc::core {

enum class PacingMode : uint8_t {
  kAfap,     // as fast as possible: ignore predelay
  kNatural,  // sleep the recorded predelay before each action
  kScaled,   // sleep predelay * scale
};

struct ReplayOptions {
  PacingMode pacing = PacingMode::kAfap;
  double predelay_scale = 1.0;
};

// Runtime argument resolution handed to Env::Execute.
struct ExecContext {
  int32_t fd = -1;      // runtime fd for the action's fd argument
  int64_t aio = -1;     // runtime aio handle for the action's aiocb argument
};

// Observability hooks on the Env concept (both optional):
//   static constexpr obs::ClockDomain kObsClockDomain;  // default kHost
//   uint32_t ObsCurrentTrack() const;  // calling thread's track; default the
//                                      // dense replay thread index
// A simulated env reports kVirtual and the current simulated thread id, so
// replay spans land on the sim thread's named virtual-time track.
template <typename Env>
constexpr obs::ClockDomain ReplayObsClock() {
  if constexpr (requires { Env::kObsClockDomain; }) {
    return Env::kObsClockDomain;
  } else {
    return obs::ClockDomain::kHost;
  }
}

template <typename Env>
ReplayReport Replay(const CompiledBenchmark& bench, Env& env,
                    const ReplayOptions& options = {}) {
  const size_t n = bench.actions.size();
  std::vector<std::atomic<uint8_t>> issued(n);
  std::vector<std::atomic<uint8_t>> done(n);
  for (size_t i = 0; i < n; ++i) {
    issued[i].store(0, std::memory_order_relaxed);
    done[i].store(0, std::memory_order_relaxed);
  }
  std::vector<std::atomic<int32_t>> fd_slots(bench.fd_slot_count);
  for (auto& s : fd_slots) {
    s.store(-1, std::memory_order_relaxed);
  }
  std::vector<std::atomic<int64_t>> aio_slots(bench.aio_slot_count);
  for (auto& s : aio_slots) {
    s.store(-1, std::memory_order_relaxed);
  }
  std::vector<ActionOutcome> outcomes(n);

  constexpr obs::ClockDomain obs_clock = ReplayObsClock<Env>();
  // Trace track per replay thread, published by each thread on startup.
  // A waiter reads a dependency owner's entry only after acquiring that
  // owner's issued/done flag, which the owner released after publishing, so
  // the read is ordered without extra synchronization.
  std::vector<uint32_t> obs_tracks(bench.thread_actions.size(), 0);
  const TimeNs start = env.Now();
  env.RunThreads(bench.thread_actions.size(), [&](size_t thread_index) {
    [[maybe_unused]] uint32_t obs_track = 0;
    ARTC_OBS_IF_ENABLED {
      if constexpr (requires { env.ObsCurrentTrack(); }) {
        obs_track = env.ObsCurrentTrack();
      } else {
        obs_track = static_cast<uint32_t>(thread_index);
      }
      obs_tracks[thread_index] = obs_track;
    }
    for (uint32_t idx : bench.thread_actions[thread_index]) {
      const CompiledAction& a = bench.actions[idx];
      const trace::TraceEvent& ev = bench.events[idx];
      // 1. Wait for dependencies.
      TimeNs wait_start = env.Now();
      for (const Dep& dep : bench.DepsFor(idx)) {
        auto& flag = dep.kind == DepKind::kIssue ? issued[dep.event] : done[dep.event];
        if (flag.load(std::memory_order_acquire) == 0) {
          env.WaitOn(dep.event,
                     [&flag] { return flag.load(std::memory_order_acquire) != 0; });
          ARTC_OBS_IF_ENABLED {
            // This dependency actually stalled us: draw a flow arrow from
            // the moment the dependency satisfied its side (issue time for
            // issue-deps, completion for done-deps — both visible through
            // the flag's release/acquire pair) to our wake-up here.
            obs::Tracer& tracer = obs::DefaultTracer();
            const ActionOutcome& dep_out = outcomes[dep.event];
            const TimeNs dep_ts =
                dep.kind == DepKind::kIssue ? dep_out.issue : dep_out.complete;
            const uint64_t flow_id =
                (static_cast<uint64_t>(dep.event) << 32) | idx;
            tracer.FlowStart(obs_clock,
                             obs_tracks[bench.actions[dep.event].thread_index],
                             "replay", "dep", dep_ts, flow_id);
            tracer.FlowEnd(obs_clock, obs_track, "replay", "dep", env.Now(),
                           flow_id);
          }
        }
      }
      outcomes[idx].wait_start = wait_start;
      outcomes[idx].dep_stall = env.Now() - wait_start;
      // 2. Pacing.
      if (options.pacing == PacingMode::kNatural && a.predelay > 0) {
        env.SleepNs(a.predelay);
      } else if (options.pacing == PacingMode::kScaled && a.predelay > 0) {
        env.SleepNs(static_cast<TimeNs>(static_cast<double>(a.predelay) *
                                        options.predelay_scale));
      }
      // 3. Issue.
      ActionOutcome& out = outcomes[idx];
      out.issue = env.Now();
      issued[idx].store(1, std::memory_order_release);
      env.Notify(idx);
      // 4. Execute with resolved runtime handles.
      ExecContext ctx;
      if (a.fd_use_slot >= 0) {
        ctx.fd = fd_slots[static_cast<size_t>(a.fd_use_slot)].load(
            std::memory_order_acquire);
      }
      if (a.aio_use_slot >= 0) {
        ctx.aio = aio_slots[static_cast<size_t>(a.aio_use_slot)].load(
            std::memory_order_acquire);
      }
      // Optional Env hook: cumulative storage service time charged to the
      // calling replay thread, so the per-action delta isolates how much of
      // the call's latency the storage stack served (vs. CPU cost model).
      [[maybe_unused]] TimeNs storage_before = 0;
      if constexpr (requires { env.StorageServiceNs(); }) {
        storage_before = env.StorageServiceNs();
      }
      int64_t ret = env.Execute(ev, ctx);
      out.complete = env.Now();
      if constexpr (requires { env.StorageServiceNs(); }) {
        out.storage_ns = env.StorageServiceNs() - storage_before;
      }
      out.ret = ret;
      out.executed = true;
      if (ret >= 0 && a.fd_def_slot >= 0) {
        fd_slots[static_cast<size_t>(a.fd_def_slot)].store(static_cast<int32_t>(ret),
                                                           std::memory_order_release);
      }
      if (ret >= 0 && a.aio_def_slot >= 0) {
        aio_slots[static_cast<size_t>(a.aio_def_slot)].store(ret,
                                                             std::memory_order_release);
      }
      // 5. Broadcast completion.
      done[idx].store(1, std::memory_order_release);
      env.Notify(idx);
      ARTC_OBS_IF_ENABLED {
        obs::Tracer& tracer = obs::DefaultTracer();
        if (out.dep_stall > 0) {
          tracer.CompleteSpan(obs_clock, obs_track, "replay", "dep_stall",
                              wait_start, out.dep_stall);
        }
        tracer.CompleteSpan(obs_clock, obs_track, "replay",
                            trace::SysName(ev.call).data(), out.issue,
                            out.complete - out.issue, "idx",
                            static_cast<int64_t>(idx));
        ARTC_OBS_OBSERVE("replay.call_latency_ns", out.complete - out.issue);
        ARTC_OBS_OBSERVE("replay.dep_stall_ns", out.dep_stall);
        ARTC_OBS_COUNT("replay.actions", 1);
      }
    }
  });
  const TimeNs wall = env.Now() - start;
  return BuildReport(bench, std::move(outcomes), wall);
}

}  // namespace artc::core

#endif  // SRC_CORE_REPLAY_ENGINE_H_

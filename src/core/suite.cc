#include "src/core/suite.h"

#include "src/util/check.h"

namespace artc::core {

std::vector<CompiledBenchmark> CompileSuite(const std::vector<CompileJob>& jobs,
                                            util::ThreadPool* pool) {
  std::vector<CompiledBenchmark> out(jobs.size());
  for (const CompileJob& job : jobs) {
    ARTC_CHECK_MSG(job.trace != nullptr && job.snapshot != nullptr,
                   "CompileSuite job missing trace or snapshot");
  }
  if (pool == nullptr) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      out[i] = Compile(*jobs[i].trace, *jobs[i].snapshot, jobs[i].options);
    }
    return out;
  }
  util::ParallelFor(*pool, jobs.size(), [&](size_t i) {
    out[i] = Compile(*jobs[i].trace, *jobs[i].snapshot, jobs[i].options);
  });
  return out;
}

}  // namespace artc::core

// Simulated replay backend: executes compiled actions against the simulated
// VFS in virtual time. Replay threads are simulated threads; dependency
// waits use simulated condition variables (striped). This backend powers
// every performance experiment — a replay on a different storage target is
// just a SimReplayEnv over a differently-configured Vfs/StorageStack.
#ifndef SRC_CORE_SIM_ENV_H_
#define SRC_CORE_SIM_ENV_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/compiled.h"
#include "src/core/emulation.h"
#include "src/core/replay_engine.h"
#include "src/sim/simulation.h"
#include "src/vfs/vfs.h"

namespace artc::core {

class SimReplayEnv {
 public:
  SimReplayEnv(sim::Simulation* simulation, vfs::Vfs* fs, EmulationPolicy policy = {});
  ~SimReplayEnv();
  SimReplayEnv(const SimReplayEnv&) = delete;
  SimReplayEnv& operator=(const SimReplayEnv&) = delete;

  // ---- Env concept for Replay<> ----
  TimeNs Now() const { return sim_->Now(); }
  void SleepNs(TimeNs d) { sim_->Sleep(d); }
  void RunThreads(size_t n, std::function<void(size_t)> body);
  template <typename Pred>
  void WaitOn(uint32_t idx, Pred pred) {
    sim::SimCondVar& cv = *stripes_[idx & stripe_mask_];
    while (!pred()) {
      cv.Wait();
    }
  }
  // Wakes every waiter on idx's stripe. With the fiber simulation backend
  // this is a pure user-space ready-list append per waiter — no kernel
  // wakeup — so the thundering-herd cost of striping stays negligible.
  void Notify(uint32_t idx) { stripes_[idx & stripe_mask_]->NotifyAll(); }
  int64_t Execute(const trace::TraceEvent& ev, const ExecContext& ctx);

  // ---- Optional obs hooks (see replay_engine.h) ----
  // Replay timestamps are simulated time, and each replay thread is a
  // simulated thread, so spans land on the sim thread's named virtual-time
  // track. Called from inside the replay thread, so concurrent Replay calls
  // sharing this env (multi-trace mode) each see their own threads.
  static constexpr obs::ClockDomain kObsClockDomain = obs::ClockDomain::kVirtual;
  uint32_t ObsCurrentTrack() const {
    return static_cast<uint32_t>(sim_->CurrentThread());
  }

  // Optional Env hook (see replay_engine.h): cumulative storage service
  // time charged to the calling simulated thread, sampled around Execute to
  // split each action's latency into storage service vs. CPU cost model.
  TimeNs StorageServiceNs() const {
    return fs_->stack().ServiceNsForCurrentThread();
  }

  // Restores the benchmark's snapshot into the VFS (Sec. 4.3.2), applying
  // emulation-policy tweaks such as the /dev/random -> /dev/urandom
  // symlink. delta performs a delta init.
  void Initialize(const trace::FsSnapshot& snapshot, bool delta = false);

  vfs::Vfs& fs() { return *fs_; }

 private:
  // Asynchronous I/O support: aio submissions run on helper simulated
  // threads; aio_return joins them.
  struct AioOp;
  int64_t AioSubmit(const trace::TraceEvent& ev, const ExecContext& ctx,
                    bool is_write);
  int64_t AioWait(int64_t handle, bool consume);

  sim::Simulation* sim_;
  vfs::Vfs* fs_;
  EmulationPolicy policy_;
  std::vector<std::unique_ptr<sim::SimCondVar>> stripes_;
  uint32_t stripe_mask_ = 0;  // stripes_.size() - 1; size is a power of two
  std::unordered_map<int64_t, std::unique_ptr<AioOp>> aio_ops_;
  int64_t next_aio_handle_ = 1;
  uint64_t exchange_tmp_counter_ = 0;
};

}  // namespace artc::core

#endif  // SRC_CORE_SIM_ENV_H_

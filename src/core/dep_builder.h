// Internal machinery shared by the batch compiler (compiler.cc) and the
// streaming compiler (compile_stream.cc): per-resource cursors, the ARTC
// dependency-edge builder, and the incremental redundant-edge pruner.
//
// Everything here is deliberately decoupled from AnnotatedTrace and
// CompiledBenchmark so a streaming pipeline that never materializes either
// can drive it event by event. Per-event context the builder needs about
// *past* events (thread index, enter/return times) lives in the small
// EventMeta sidecar both compilers append to as they scan — ~20 bytes per
// event instead of the ~200-byte TraceEvent.
//
// Not a public API: include only from src/core implementation files.
#ifndef SRC_CORE_DEP_BUILDER_H_
#define SRC_CORE_DEP_BUILDER_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/compiled.h"
#include "src/fsmodel/resource_model.h"
#include "src/util/interner.h"

namespace artc::core::internal {

// Per-event sidecar consulted when a later event's edge references this one.
// Appended in trace order; index == trace event index.
struct EventMeta {
  std::vector<uint32_t> thread_index;  // dense replay-thread index
  std::vector<TimeNs> enter;
  std::vector<TimeNs> ret_time;

  void Push(uint32_t ti, const trace::TraceEvent& ev) {
    thread_index.push_back(ti);
    enter.push_back(ev.enter);
    ret_time.push_back(ev.ret_time);
  }
  size_t size() const { return thread_index.size(); }
};

// Per-resource scan state (the paper's "last action / creating action /
// remaining uses" bookkeeping).
struct Cursor {
  uint32_t create_event = kNoEvent;
  uint32_t last_event = kNoEvent;
  // Last use per replay thread since create (a delete must wait for every
  // outstanding use, but one completion-dep per thread suffices: each
  // thread's later use subsumes its earlier ones).
  std::vector<std::pair<uint32_t, uint32_t>> last_use_by_thread;
  // Threads that already hold a dep on create_event (a second dep from the
  // same thread is transitively implied by thread ordering).
  std::vector<uint32_t> create_waiters;
  bool touched = false;
};

// Emits one event's dependency edges into a small sorted scratch vector.
// The caller owns what happens next: the batch compiler flushes the scratch
// into the CSR arena, the streaming compiler refines predelay and prunes
// in place first. `resources` may keep growing between events (streaming
// annotation); cursors are sized lazily against it.
class DepBuilder {
 public:
  DepBuilder(const std::vector<fsmodel::ResourceInfo>& resources,
             const util::StringInterner* path_names, const EventMeta& meta,
             std::vector<std::string>* dep_resource_names,
             EdgeStats* edge_stats)
      : resources_(resources),
        path_names_(path_names),
        meta_(meta),
        names_(dep_resource_names),
        stats_(edge_stats) {}

  // Per-event emission protocol: BeginEvent, then ArtcTouch per annotation
  // touch (or AddDep/AddInfraDep for the temporal method), then read deps().
  void BeginEvent(uint32_t index, size_t reserve_hint) {
    cur_event_ = index;
    cur_touch_res_ = fsmodel::kNoResource;
    scratch_.clear();
    scratch_.reserve(reserve_hint);
  }

  void ArtcTouch(const fsmodel::Touch& touch, const ReplayModes& modes);

  // The current event's deps, sorted by prerequisite event and deduped.
  // Mutable so the streaming compiler can prune in place before flushing.
  std::vector<Dep>& deps() { return scratch_; }

  // Adds one dep, keeping scratch sorted/deduped; same-thread completion
  // deps (other than temporal issue order) are structurally implied and
  // skipped. Public for the temporal method's emission pass.
  void AddDep(uint32_t dep_event, DepKind kind, RuleTag rule);

  // Replayability infrastructure dep (temporal method): the defining event
  // of a used fd/aio slot must have completed. Not counted in edge stats.
  void AddInfraDep(uint32_t def_event);

  void CountEdge(RuleTag rule, uint32_t dep_event);

  // Resident bytes of the builder's own state (cursors + compaction maps) —
  // the streaming compiler reports this as part of its memory bound.
  uint64_t state_bytes() const;

 private:
  void Sequential(Cursor& c, RuleTag rule);
  void Stage(Cursor& c, fsmodel::Access access, RuleTag rule);
  void NameOrdering(const fsmodel::ResourceInfo& res, const Cursor& c,
                    RuleTag rule);
  void Update(Cursor& c, fsmodel::Access access);

  uint32_t ThreadOf(uint32_t event) const { return meta_.thread_index[event]; }

  std::vector<Dep>::iterator LowerBound(uint32_t dep_event);

  uint32_t CompactRes(uint32_t raw);
  uint32_t NewCompactName(const fsmodel::ResourceInfo& info, uint32_t raw);

  const std::vector<fsmodel::ResourceInfo>& resources_;
  const util::StringInterner* path_names_;  // may be null (synthetic ids)
  const EventMeta& meta_;
  std::vector<std::string>* names_;
  EdgeStats* stats_;
  std::vector<Cursor> cursors_;
  uint32_t cur_event_ = 0;
  uint32_t cur_touch_res_ = fsmodel::kNoResource;
  std::vector<Dep> scratch_;  // current event's deps, sorted by event
  // raw resource id -> compact attribution id + 1 (0 = unassigned), lazily
  // grown on the first materialised edge.
  std::vector<uint32_t> res_compact_;
  std::unordered_map<uint64_t, uint32_t> key_to_compact_;  // (kind,name)->id
};

// Drops completion edges that can never be the edge an action blocks on,
// one event at a time.
//
// For event k with same-thread predecessor p, the replayer starts checking
// k's deps only after p has completed. So if dep d is guaranteed complete
// before p completes — in *every* schedule, by thread order and the
// remaining completion edges — then k's check of d is always a no-op read,
// and removing the edge leaves replay behaviour (and simulated timestamps
// under a fixed seed) bit-identical. Edges implied only by *sibling* deps
// of k are NOT safe to drop: k might reach d's wait before the sibling has
// completed, so the edge can be the one that blocks.
//
// The pass keeps one completion vector clock per event: clock[i][t] is
// (index + 1) of the latest event on thread t known complete whenever i is
// complete. The forward scan computes it as the predecessor's clock merged
// with the clocks of i's completion deps plus i itself, pruning each dep
// already covered by the predecessor's clock. Every pruned edge is in the
// transitive closure of the kept edges plus thread order (inductively), so
// the closure is unchanged.
//
// Rows are stored sparsely: an event's cross-thread clock differs from its
// same-thread predecessor's only if the event has completion deps to merge,
// and on real traces the vast majority of events have none. So a new row
// materialises only at those "merge" events; every other event shares its
// thread's latest row (row 0 is the all-zeros row). An event's own-thread
// entry is implicitly (index + 1) — readers account for it explicitly —
// which is why sharing the row with later events on the thread is sound.
// Rows are as wide as the thread set *seen at creation time* (streaming
// discovers threads as it goes); entries past a row's width read as zero,
// which is exactly what a batch pass with the final thread count would have
// stored there.
class DepPruner {
 public:
  explicit DepPruner(const EventMeta& meta, EdgeStats* stats)
      : meta_(meta), stats_(stats) {
    row_off_.push_back(0);  // row 0: the empty (all-zeros) clock
    row_width_.push_back(0);
  }

  // Filters event i's deps in place (kept deps stay in order at the front)
  // and returns the kept count. Must be called exactly once per event, in
  // trace order, including for events with no deps.
  uint32_t PruneEvent(uint32_t i, uint32_t ti, Dep* deps, uint32_t count);

  uint64_t state_bytes() const {
    return (rows_.capacity() + row_off_.capacity() + row_width_.capacity() +
            row_of_.capacity() + cur_row_.capacity()) *
           sizeof(uint32_t);
  }

 private:
  uint32_t RowVal(uint32_t row, uint32_t t) const {
    return t < row_width_[row] ? rows_[row_off_[row] + t] : 0;
  }

  const EventMeta& meta_;
  EdgeStats* stats_;
  std::vector<uint32_t> rows_;       // concatenated variable-width rows
  std::vector<uint32_t> row_off_;    // row id -> offset into rows_
  std::vector<uint32_t> row_width_;  // row id -> entry count
  std::vector<uint32_t> row_of_;     // event -> its clock row id
  std::vector<uint32_t> cur_row_;    // thread -> latest row id
};

}  // namespace artc::core::internal

#endif  // SRC_CORE_DEP_BUILDER_H_

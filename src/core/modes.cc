#include "src/core/modes.h"

#include "src/util/check.h"

namespace artc::core {

const char* ReplayMethodName(ReplayMethod m) {
  switch (m) {
    case ReplayMethod::kArtc:
      return "artc";
    case ReplayMethod::kSingleThreaded:
      return "single";
    case ReplayMethod::kTemporal:
      return "temporal";
    case ReplayMethod::kUnconstrained:
      return "unconstrained";
  }
  return "?";
}

ReplayMethod ReplayMethodFromName(const std::string& name) {
  if (name == "artc") {
    return ReplayMethod::kArtc;
  }
  if (name == "single") {
    return ReplayMethod::kSingleThreaded;
  }
  if (name == "temporal") {
    return ReplayMethod::kTemporal;
  }
  if (name == "unconstrained") {
    return ReplayMethod::kUnconstrained;
  }
  ARTC_CHECK_MSG(false, "unknown replay method '%s'", name.c_str());
  return ReplayMethod::kArtc;
}

const char* RuleTagName(RuleTag t) {
  switch (t) {
    case RuleTag::kThreadSeq:
      return "thread_seq";
    case RuleTag::kFileSeq:
      return "file_seq";
    case RuleTag::kPathStage:
      return "path_stage";
    case RuleTag::kPathName:
      return "path_name";
    case RuleTag::kFdStage:
      return "fd_stage";
    case RuleTag::kFdSeq:
      return "fd_seq";
    case RuleTag::kAioStage:
      return "aio_stage";
    case RuleTag::kMutex:
      return "mutex";
    case RuleTag::kBarrier:
      return "barrier";
    case RuleTag::kCond:
      return "cond";
    case RuleTag::kJoin:
      return "join";
    case RuleTag::kTemporal:
      return "temporal";
    case RuleTag::kCount:
      break;
  }
  return "?";
}

}  // namespace artc::core

// Replay methods and ordering-rule modes (paper Table 2 and Sec. 5).
#ifndef SRC_CORE_MODES_H_
#define SRC_CORE_MODES_H_

#include <cstdint>
#include <string>

namespace artc::core {

// The four replay strategies compared in the evaluation.
enum class ReplayMethod : uint8_t {
  kArtc,            // ROOT resource-oriented ordering (this paper)
  kSingleThreaded,  // one replay thread, trace order (== program_seq)
  kTemporal,        // per-thread replay threads, global issue order preserved
  kUnconstrained,   // per-thread replay threads, no cross-thread ordering
};

const char* ReplayMethodName(ReplayMethod m);
ReplayMethod ReplayMethodFromName(const std::string& name);

// Which ROOT rules ARTC applies to which resources. Defaults follow the
// paper (all supported constraints except program_seq are on by default;
// thread_seq is structural and always enforced).
struct ReplayModes {
  bool file_seq = true;         // sequential ordering on file resources
  bool path_stage_name = true;  // joint stage+name ordering on paths
  bool fd_stage = true;         // stage ordering on file descriptors
  bool fd_seq = false;          // sequential ordering on file descriptors
  bool aio_stage = true;        // stage ordering on AIO control blocks
  bool sync_rules = true;       // ordering on mutex/barrier/cond/join
};

// Rule tags used for dependency-edge statistics (Fig. 8).
enum class RuleTag : uint8_t {
  kThreadSeq,
  kFileSeq,
  kPathStage,
  kPathName,
  kFdStage,
  kFdSeq,
  kAioStage,
  kMutex,    // unlock -> next lock, lock -> foreign unlock
  kBarrier,  // fan-in to the pivot, fan-out to continuations
  kCond,     // signal/broadcast -> woken wait
  kJoin,     // joined thread's last action -> join
  kTemporal,
  kCount,
};

const char* RuleTagName(RuleTag t);

}  // namespace artc::core

#endif  // SRC_CORE_MODES_H_

#include "src/core/compiler.h"

#include <algorithm>
#include <unordered_map>

#include "src/fsmodel/resource_model.h"
#include "src/util/check.h"

namespace artc::core {
namespace {

using fsmodel::Access;
using fsmodel::AnnotatedTrace;
using fsmodel::kNoResource;
using fsmodel::ResourceKind;

// Per-resource scan state (the paper's "last action / creating action /
// remaining uses" bookkeeping).
struct Cursor {
  uint32_t create_event = kNoEvent;
  uint32_t last_event = kNoEvent;
  // Last use per replay thread since create (a delete must wait for every
  // outstanding use, but one completion-dep per thread suffices: each
  // thread's later use subsumes its earlier ones).
  std::vector<std::pair<uint32_t, uint32_t>> last_use_by_thread;
  // Threads that already hold a dep on create_event (a second dep from the
  // same thread is transitively implied by thread ordering).
  std::vector<uint32_t> create_waiters;
  bool touched = false;
};

class DepBuilder {
 public:
  DepBuilder(const trace::Trace& t, const AnnotatedTrace& annotated,
             CompiledBenchmark* out)
      : trace_(t), ann_(annotated), out_(out) {
    cursors_.resize(ann_.resources.size());
  }

  void EmitArtcDeps(const ReplayModes& modes) {
    for (const trace::TraceEvent& ev : trace_.events) {
      cur_event_ = ev.index;
      cur_deps_ = &out_->actions[ev.index].deps;
      for (const fsmodel::Touch& touch : ann_.touches[ev.index]) {
        const fsmodel::ResourceInfo& res = ann_.resources[touch.resource];
        Cursor& c = cursors_[touch.resource];
        switch (res.kind) {
          case ResourceKind::kFile:
            if (modes.file_seq) {
              Sequential(c, RuleTag::kFileSeq);
            }
            break;
          case ResourceKind::kPath:
            if (modes.path_stage_name) {
              NameOrdering(res, c);
              Stage(c, touch.access, RuleTag::kPathStage);
            }
            break;
          case ResourceKind::kFd:
            if (modes.fd_seq) {
              Sequential(c, RuleTag::kFdSeq);
            } else if (modes.fd_stage) {
              Stage(c, touch.access, RuleTag::kFdStage);
            }
            break;
          case ResourceKind::kAiocb:
            if (modes.aio_stage) {
              Stage(c, touch.access, RuleTag::kAioStage);
            }
            break;
          case ResourceKind::kThread:
            // Structural (each replay thread plays its actions in order);
            // counted for edge statistics without materialising a dep.
            if (c.touched && c.last_event != kNoEvent) {
              CountEdge(RuleTag::kThreadSeq, c.last_event);
            }
            break;
          case ResourceKind::kProgram:
            break;
        }
        Update(c, touch.access);
      }
      FinishEvent();
    }
  }

  void EmitTemporalDeps() {
    for (const trace::TraceEvent& ev : trace_.events) {
      cur_event_ = ev.index;
      cur_deps_ = &out_->actions[ev.index].deps;
      if (ev.index > 0) {
        uint32_t prev = static_cast<uint32_t>(ev.index - 1);
        AddDep(prev, DepKind::kIssue, RuleTag::kTemporal);
      }
      FinishEvent();
    }
  }

 private:
  void Sequential(Cursor& c, RuleTag rule) {
    if (c.touched && c.last_event != kNoEvent && c.last_event != cur_event_) {
      AddDep(c.last_event, DepKind::kCompletion, rule);
    }
  }

  void Stage(Cursor& c, Access access, RuleTag rule) {
    if (access != Access::kCreate && c.create_event != kNoEvent &&
        c.create_event != cur_event_) {
      uint32_t thread = ThreadOf(cur_event_);
      bool seen = false;
      for (uint32_t t : c.create_waiters) {
        if (t == thread) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        AddDep(c.create_event, DepKind::kCompletion, rule);
        c.create_waiters.push_back(thread);
      }
    }
    if (access == Access::kDelete) {
      for (const auto& [thread, use] : c.last_use_by_thread) {
        if (use != cur_event_) {
          AddDep(use, DepKind::kCompletion, rule);
        }
      }
    }
  }

  void NameOrdering(const fsmodel::ResourceInfo& res, const Cursor& c) {
    if (c.touched || res.prev_generation == kNoResource) {
      return;  // only the first action of a generation gets the edge
    }
    const Cursor& prev = cursors_[res.prev_generation];
    if (prev.last_event != kNoEvent && prev.last_event != cur_event_) {
      AddDep(prev.last_event, DepKind::kCompletion, RuleTag::kPathName);
    }
  }

  void Update(Cursor& c, Access access) {
    c.touched = true;
    switch (access) {
      case Access::kCreate:
        c.create_event = cur_event_;
        c.last_use_by_thread.clear();
        c.create_waiters.clear();
        break;
      case Access::kUse: {
        uint32_t thread = ThreadOf(cur_event_);
        bool found = false;
        for (auto& [t, use] : c.last_use_by_thread) {
          if (t == thread) {
            use = cur_event_;
            found = true;
            break;
          }
        }
        if (!found) {
          c.last_use_by_thread.push_back({thread, cur_event_});
        }
        break;
      }
      case Access::kDelete:
        break;
    }
    c.last_event = cur_event_;
  }

  uint32_t ThreadOf(uint32_t event) const {
    return out_->actions[event].thread_index;
  }

  void AddDep(uint32_t dep_event, DepKind kind, RuleTag rule) {
    ARTC_CHECK(dep_event < cur_event_);
    // A completion-dep on an earlier action of the same replay thread is
    // enforced structurally (threads play their actions in order): skip it.
    // Temporal issue-order deps are kept as-is.
    if (kind == DepKind::kCompletion && rule != RuleTag::kTemporal &&
        ThreadOf(dep_event) == ThreadOf(cur_event_)) {
      return;
    }
    // Dedup within the event; keep the stronger kind on collision.
    for (Dep& d : *cur_deps_) {
      if (d.event == dep_event) {
        if (kind == DepKind::kCompletion && d.kind == DepKind::kIssue) {
          d.kind = kind;
        }
        return;
      }
    }
    cur_deps_->push_back({dep_event, kind, rule});
    CountEdge(rule, dep_event);
  }

  void CountEdge(RuleTag rule, uint32_t dep_event) {
    size_t idx = static_cast<size_t>(rule);
    out_->edge_stats.count_by_rule[idx]++;
    // Edge length: time between the two actions in the original trace.
    TimeNs len = trace_.events[cur_event_].enter - trace_.events[dep_event].enter;
    out_->edge_stats.total_length_ns[idx] += static_cast<double>(len);
  }

  void FinishEvent() {
    // Same-thread structural deps were already skipped in AddDep; all that
    // remains is ordering the dep list for deterministic output.
    std::sort(cur_deps_->begin(), cur_deps_->end(),
              [](const Dep& a, const Dep& b) { return a.event < b.event; });
  }

  const trace::Trace& trace_;
  const AnnotatedTrace& ann_;
  CompiledBenchmark* out_;
  std::vector<Cursor> cursors_;
  uint32_t cur_event_ = 0;
  std::vector<Dep>* cur_deps_ = nullptr;
};

}  // namespace

uint64_t EdgeStats::TotalEdges() const {
  uint64_t n = 0;
  for (uint64_t c : count_by_rule) {
    n += c;
  }
  return n;
}

double EdgeStats::MeanLengthNs() const {
  uint64_t n = 0;
  double total = 0;
  for (size_t i = 0; i < count_by_rule.size(); ++i) {
    n += count_by_rule[i];
    total += total_length_ns[i];
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

CompiledBenchmark Compile(const trace::Trace& t, const trace::FsSnapshot& snapshot,
                          const CompileOptions& options) {
  CompiledBenchmark bench;
  bench.method = options.method;
  bench.modes = options.modes;
  bench.snapshot = snapshot;

  fsmodel::AnnotatedTrace ann = fsmodel::AnnotateTrace(t, snapshot);
  bench.model_warnings = ann.warnings;

  // Assign fd/aio remap slots: one per generation resource.
  std::unordered_map<uint32_t, int32_t> fd_slots;
  std::unordered_map<uint32_t, int32_t> aio_slots;
  for (uint32_t r = 0; r < ann.resources.size(); ++r) {
    if (ann.resources[r].kind == fsmodel::ResourceKind::kFd) {
      fd_slots[r] = static_cast<int32_t>(bench.fd_slot_count++);
    } else if (ann.resources[r].kind == fsmodel::ResourceKind::kAiocb) {
      aio_slots[r] = static_cast<int32_t>(bench.aio_slot_count++);
    }
  }

  // Dense replay threads.
  std::unordered_map<uint32_t, uint32_t> thread_index;
  bool single = options.method == ReplayMethod::kSingleThreaded;
  if (single) {
    bench.thread_ids.push_back(0);
    bench.thread_actions.emplace_back();
  }

  bench.actions.resize(t.events.size());
  std::vector<TimeNs> last_ret_by_thread;
  TimeNs trace_start = t.events.empty() ? 0 : t.events.front().enter;
  for (const trace::TraceEvent& ev : t.events) {
    CompiledAction& a = bench.actions[ev.index];
    a.ev = ev;
    uint32_t ti;
    if (single) {
      ti = 0;
    } else {
      auto it = thread_index.find(ev.tid);
      if (it == thread_index.end()) {
        ti = static_cast<uint32_t>(bench.thread_ids.size());
        thread_index[ev.tid] = ti;
        bench.thread_ids.push_back(ev.tid);
        bench.thread_actions.emplace_back();
      } else {
        ti = it->second;
      }
    }
    a.thread_index = ti;
    bench.thread_actions[ti].push_back(static_cast<uint32_t>(ev.index));
    if (last_ret_by_thread.size() <= ti) {
      last_ret_by_thread.resize(ti + 1, trace_start);
    }
    a.predelay = std::max<TimeNs>(0, ev.enter - last_ret_by_thread[ti]);
    last_ret_by_thread[ti] = ev.ret_time;

    // Slot wiring from the annotation.
    for (const fsmodel::Touch& touch : ann.touches[ev.index]) {
      const fsmodel::ResourceInfo& res = ann.resources[touch.resource];
      if (res.kind == fsmodel::ResourceKind::kFd) {
        if (touch.access == fsmodel::Access::kCreate) {
          a.fd_def_slot = fd_slots[touch.resource];
        } else if (a.fd_use_slot < 0) {
          a.fd_use_slot = fd_slots[touch.resource];
        }
      } else if (res.kind == fsmodel::ResourceKind::kAiocb) {
        if (touch.access == fsmodel::Access::kCreate) {
          a.aio_def_slot = aio_slots[touch.resource];
        } else if (a.aio_use_slot < 0) {
          a.aio_use_slot = aio_slots[touch.resource];
        }
      }
    }
  }

  DepBuilder builder(t, ann, &bench);
  switch (options.method) {
    case ReplayMethod::kArtc:
      builder.EmitArtcDeps(options.modes);
      break;
    case ReplayMethod::kTemporal:
      builder.EmitTemporalDeps();
      break;
    case ReplayMethod::kSingleThreaded:
    case ReplayMethod::kUnconstrained:
      break;  // structural only
  }

  if (options.method == ReplayMethod::kTemporal) {
    // Issue ordering alone does not guarantee that the open defining a
    // cross-thread descriptor has *completed* (and therefore filled the
    // remap slot) before a use on another thread executes. Add the minimal
    // infrastructure deps so the temporal baseline is runnable, as in the
    // paper (its temporal failure counts match ARTC's). These are not
    // counted as ordering edges.
    std::vector<uint32_t> fd_def_event(bench.fd_slot_count, kNoEvent);
    std::vector<uint32_t> aio_def_event(bench.aio_slot_count, kNoEvent);
    for (const CompiledAction& a : bench.actions) {
      if (a.fd_def_slot >= 0) {
        fd_def_event[static_cast<size_t>(a.fd_def_slot)] = static_cast<uint32_t>(a.ev.index);
      }
      if (a.aio_def_slot >= 0) {
        aio_def_event[static_cast<size_t>(a.aio_def_slot)] =
            static_cast<uint32_t>(a.ev.index);
      }
    }
    for (CompiledAction& a : bench.actions) {
      auto add_def_dep = [&a, &bench](uint32_t def) {
        if (def == kNoEvent || def >= a.ev.index ||
            bench.actions[def].thread_index == a.thread_index) {
          return;
        }
        for (Dep& d : a.deps) {
          if (d.event == def) {
            d.kind = DepKind::kCompletion;
            return;
          }
        }
        a.deps.push_back({def, DepKind::kCompletion, RuleTag::kTemporal});
      };
      if (a.fd_use_slot >= 0) {
        add_def_dep(fd_def_event[static_cast<size_t>(a.fd_use_slot)]);
      }
      if (a.aio_use_slot >= 0) {
        add_def_dep(aio_def_event[static_cast<size_t>(a.aio_use_slot)]);
      }
    }
  }

  // Predelay is the interval between an action's issue and the moment its
  // inferred constraints were satisfied in the original execution (paper
  // Sec. 4.3.3): the latest of the same-thread predecessor's return and the
  // dependencies' returns. Computing it against the thread gap alone would
  // charge idle phases (e.g., a coordinator thread joining its workers) as
  // compute and replay them as sleeps.
  for (CompiledAction& a : bench.actions) {
    TimeNs base = a.ev.enter - a.predelay;  // same-thread predecessor return
    for (const Dep& d : a.deps) {
      base = std::max(base, t.events[d.event].ret_time);
    }
    a.predelay = std::max<TimeNs>(0, a.ev.enter - base);
  }
  return bench;
}

}  // namespace artc::core

#include "src/core/compiler.h"

#include <algorithm>
#include <unordered_map>

#include "src/fsmodel/resource_model.h"
#include "src/obs/obs.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace artc::core {
namespace {

using fsmodel::Access;
using fsmodel::AnnotatedTrace;
using fsmodel::kNoResource;
using fsmodel::ResourceKind;

// Per-resource scan state (the paper's "last action / creating action /
// remaining uses" bookkeeping).
struct Cursor {
  uint32_t create_event = kNoEvent;
  uint32_t last_event = kNoEvent;
  // Last use per replay thread since create (a delete must wait for every
  // outstanding use, but one completion-dep per thread suffices: each
  // thread's later use subsumes its earlier ones).
  std::vector<std::pair<uint32_t, uint32_t>> last_use_by_thread;
  // Threads that already hold a dep on create_event (a second dep from the
  // same thread is transitively implied by thread ordering).
  std::vector<uint32_t> create_waiters;
  bool touched = false;
};

// Builds the dependency CSR arena in one streaming pass: deps of the
// current event accumulate (sorted, deduped) in a small reusable scratch
// vector, then flush to the shared arena when the event finishes.
class DepBuilder {
 public:
  DepBuilder(const AnnotatedTrace& annotated, CompiledBenchmark* out)
      : ann_(annotated), out_(out) {
    cursors_.resize(ann_.resources.size());
    out_->dep_arena.clear();
    out_->dep_offsets.assign(out_->events.size() + 1, 0);
  }

  // Per-event ARTC emission, driven from the compiler's single streaming
  // pass over the trace (the same loop that fills actions and wires remap
  // slots): BeginEvent, then ArtcTouch per annotation touch, then
  // FinishEvent.
  void ArtcTouch(const fsmodel::Touch& touch, const ReplayModes& modes) {
    const fsmodel::ResourceInfo& res = ann_.resources[touch.resource];
    Cursor& c = cursors_[touch.resource];
    cur_touch_res_ = touch.resource;
    switch (res.kind) {
      case ResourceKind::kFile:
        if (modes.file_seq) {
          Sequential(c, RuleTag::kFileSeq);
        }
        break;
      case ResourceKind::kPath:
        if (modes.path_stage_name) {
          NameOrdering(res, c);
          Stage(c, touch.access, RuleTag::kPathStage);
        }
        break;
      case ResourceKind::kFd:
        if (modes.fd_seq) {
          Sequential(c, RuleTag::kFdSeq);
        } else if (modes.fd_stage) {
          Stage(c, touch.access, RuleTag::kFdStage);
        }
        break;
      case ResourceKind::kAiocb:
        if (modes.aio_stage) {
          Stage(c, touch.access, RuleTag::kAioStage);
        }
        break;
      case ResourceKind::kThread:
        // Structural (each replay thread plays its actions in order);
        // counted for edge statistics without materialising a dep.
        if (c.touched && c.last_event != kNoEvent) {
          CountEdge(RuleTag::kThreadSeq, c.last_event);
        }
        break;
      case ResourceKind::kProgram:
        break;
    }
    Update(c, touch.access);
  }

  void EmitTemporalDeps() {
    // Issue ordering alone does not guarantee that the open defining a
    // cross-thread descriptor has *completed* (and therefore filled the
    // remap slot) before a use on another thread executes. Fold in the
    // minimal infrastructure deps so the temporal baseline is runnable, as
    // in the paper. These are not counted as ordering edges. Each fd/aio
    // slot is one generation, so it has exactly one defining event —
    // precompute them so emission stays a single forward pass.
    std::vector<uint32_t> fd_def(out_->fd_slot_count, kNoEvent);
    std::vector<uint32_t> aio_def(out_->aio_slot_count, kNoEvent);
    for (uint32_t i = 0; i < out_->actions.size(); ++i) {
      const CompiledAction& a = out_->actions[i];
      if (a.fd_def_slot >= 0) {
        fd_def[static_cast<size_t>(a.fd_def_slot)] = i;
      }
      if (a.aio_def_slot >= 0) {
        aio_def[static_cast<size_t>(a.aio_def_slot)] = i;
      }
    }
    for (uint32_t i = 0; i < out_->events.size(); ++i) {
      BeginEvent(i);
      if (i > 0) {
        AddDep(i - 1, DepKind::kIssue, RuleTag::kTemporal);
      }
      const CompiledAction& a = out_->actions[i];
      if (a.fd_use_slot >= 0) {
        AddInfraDep(fd_def[static_cast<size_t>(a.fd_use_slot)]);
      }
      if (a.aio_use_slot >= 0) {
        AddInfraDep(aio_def[static_cast<size_t>(a.aio_use_slot)]);
      }
      FinishEvent();
    }
  }

  void BeginEvent(uint32_t index) {
    cur_event_ = index;
    cur_touch_res_ = kNoResource;
    scratch_.clear();
    // Each touch yields at most one dep plus the create edge; a little
    // headroom avoids regrowth on delete events with many outstanding uses.
    scratch_.reserve(ann_.touches.empty() ? 4 : ann_.touches[index].size() + 2);
  }

  void FinishEvent() {
    // Scratch is already sorted by event; flush it to the arena.
    std::vector<Dep>& arena = out_->dep_arena;
    arena.insert(arena.end(), scratch_.begin(), scratch_.end());
    out_->dep_offsets[cur_event_ + 1] = static_cast<uint32_t>(arena.size());
  }

 private:
  void Sequential(Cursor& c, RuleTag rule) {
    if (c.touched && c.last_event != kNoEvent && c.last_event != cur_event_) {
      AddDep(c.last_event, DepKind::kCompletion, rule);
    }
  }

  void Stage(Cursor& c, Access access, RuleTag rule) {
    if (access != Access::kCreate && c.create_event != kNoEvent &&
        c.create_event != cur_event_) {
      uint32_t thread = ThreadOf(cur_event_);
      bool seen = false;
      for (uint32_t t : c.create_waiters) {
        if (t == thread) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        AddDep(c.create_event, DepKind::kCompletion, rule);
        c.create_waiters.push_back(thread);
      }
    }
    if (access == Access::kDelete) {
      for (const auto& [thread, use] : c.last_use_by_thread) {
        if (use != cur_event_) {
          AddDep(use, DepKind::kCompletion, rule);
        }
      }
    }
  }

  void NameOrdering(const fsmodel::ResourceInfo& res, const Cursor& c) {
    if (c.touched || res.prev_generation == kNoResource) {
      return;  // only the first action of a generation gets the edge
    }
    const Cursor& prev = cursors_[res.prev_generation];
    if (prev.last_event != kNoEvent && prev.last_event != cur_event_) {
      AddDep(prev.last_event, DepKind::kCompletion, RuleTag::kPathName);
    }
  }

  void Update(Cursor& c, Access access) {
    c.touched = true;
    switch (access) {
      case Access::kCreate:
        c.create_event = cur_event_;
        c.last_use_by_thread.clear();
        c.create_waiters.clear();
        break;
      case Access::kUse: {
        uint32_t thread = ThreadOf(cur_event_);
        bool found = false;
        for (auto& [t, use] : c.last_use_by_thread) {
          if (t == thread) {
            use = cur_event_;
            found = true;
            break;
          }
        }
        if (!found) {
          c.last_use_by_thread.push_back({thread, cur_event_});
        }
        break;
      }
      case Access::kDelete:
        break;
    }
    c.last_event = cur_event_;
  }

  uint32_t ThreadOf(uint32_t event) const {
    return out_->actions[event].thread_index;
  }

  // Finds the sorted insertion point for `dep_event` in the scratch list.
  std::vector<Dep>::iterator LowerBound(uint32_t dep_event) {
    return std::lower_bound(
        scratch_.begin(), scratch_.end(), dep_event,
        [](const Dep& d, uint32_t e) { return d.event < e; });
  }

  void AddDep(uint32_t dep_event, DepKind kind, RuleTag rule) {
    ARTC_CHECK(dep_event < cur_event_);
    // A completion-dep on an earlier action of the same replay thread is
    // enforced structurally (threads play their actions in order): skip it.
    // Temporal issue-order deps are kept as-is.
    if (kind == DepKind::kCompletion && rule != RuleTag::kTemporal &&
        ThreadOf(dep_event) == ThreadOf(cur_event_)) {
      return;
    }
    // Scratch stays sorted by event, so dedup is an insertion-point check
    // instead of a scan over every dep added so far. Keep the stronger
    // kind on collision.
    auto it = LowerBound(dep_event);
    if (it != scratch_.end() && it->event == dep_event) {
      if (kind == DepKind::kCompletion && it->kind == DepKind::kIssue) {
        it->kind = kind;
      }
      return;
    }
    scratch_.insert(it, {dep_event, kind, rule, CompactRes(cur_touch_res_)});
    CountEdge(rule, dep_event);
  }

  // Maps the annotator's per-generation resource id to a compact
  // attribution id shared by every generation of the same underlying name
  // (keyed by kind + ResourceInfo::name_id), materialising a human-readable
  // name on first use. Only resources that produce a materialised edge get
  // an entry, so the table stays proportional to the edge set.
  uint32_t CompactRes(uint32_t raw) {
    if (raw == kNoResource) {
      return kNoDepResource;
    }
    if (res_compact_.size() < ann_.resources.size()) {
      res_compact_.assign(ann_.resources.size(), 0);
    }
    if (res_compact_[raw] != 0) {
      return res_compact_[raw] - 1;
    }
    const fsmodel::ResourceInfo& info = ann_.resources[raw];
    uint32_t compact;
    if (info.name_id != kNoResource) {
      // Share one id across generations of the same name.
      uint64_t key = (static_cast<uint64_t>(info.kind) << 32) | info.name_id;
      auto [it, inserted] =
          key_to_compact_.try_emplace(key, 0);
      if (inserted) {
        it->second = NewCompactName(info, raw);
      }
      compact = it->second;
    } else {
      compact = NewCompactName(info, raw);
    }
    res_compact_[raw] = compact + 1;
    return compact;
  }

  uint32_t NewCompactName(const fsmodel::ResourceInfo& info, uint32_t raw) {
    std::string name;
    switch (info.kind) {
      case ResourceKind::kPath:
        if (ann_.path_names != nullptr && info.name_id != kNoResource) {
          name = std::string(ann_.path_names->View(info.name_id));
        } else {
          name = StrFormat("path#%u", raw);
        }
        break;
      case ResourceKind::kFd:
        name = StrFormat("fd:%u", info.name_id);
        break;
      case ResourceKind::kFile:
        name = StrFormat("file#%u", info.name_id);
        break;
      case ResourceKind::kThread:
        name = StrFormat("thread:%u", info.name_id);
        break;
      case ResourceKind::kAiocb:
        name = StrFormat("aio:%u", info.name_id);
        break;
      case ResourceKind::kProgram:
        name = "program";
        break;
    }
    if (name.empty()) {
      name = StrFormat("res#%u", raw);
    }
    out_->dep_resource_names.push_back(std::move(name));
    return static_cast<uint32_t>(out_->dep_resource_names.size() - 1);
  }

  // Replayability infrastructure dep (temporal method): the defining event
  // of a used fd/aio slot must have completed. Not counted in edge stats.
  void AddInfraDep(uint32_t def_event) {
    if (def_event == kNoEvent || def_event >= cur_event_ ||
        ThreadOf(def_event) == ThreadOf(cur_event_)) {
      return;
    }
    auto it = LowerBound(def_event);
    if (it != scratch_.end() && it->event == def_event) {
      it->kind = DepKind::kCompletion;
      return;
    }
    scratch_.insert(it, {def_event, DepKind::kCompletion, RuleTag::kTemporal});
  }

  void CountEdge(RuleTag rule, uint32_t dep_event) {
    size_t idx = static_cast<size_t>(rule);
    out_->edge_stats.count_by_rule[idx]++;
    // Edge length: time between the two actions in the original trace.
    TimeNs len = out_->events[cur_event_].enter - out_->events[dep_event].enter;
    out_->edge_stats.total_length_ns[idx] += static_cast<double>(len);
  }

  const AnnotatedTrace& ann_;
  CompiledBenchmark* out_;
  std::vector<Cursor> cursors_;
  uint32_t cur_event_ = 0;
  uint32_t cur_touch_res_ = kNoResource;  // annotator resource being emitted
  std::vector<Dep> scratch_;  // current event's deps, sorted by event
  // raw resource id -> compact attribution id + 1 (0 = unassigned), lazily
  // sized on the first materialised edge.
  std::vector<uint32_t> res_compact_;
  std::unordered_map<uint64_t, uint32_t> key_to_compact_;  // (kind,name)->id
};

// Drops completion edges that can never be the edge an action blocks on.
//
// For event k with same-thread predecessor p, the replayer starts checking
// k's deps only after p has completed. So if dep d is guaranteed complete
// before p completes — in *every* schedule, by thread order and the
// remaining completion edges — then k's check of d is always a no-op read,
// and removing the edge leaves replay behaviour (and simulated timestamps
// under a fixed seed) bit-identical. Edges implied only by *sibling* deps
// of k are NOT safe to drop: k might reach d's wait before the sibling has
// completed, so the edge can be the one that blocks.
//
// The pass keeps one completion vector clock per event: clock[i][t] is
// (index + 1) of the latest event on thread t known complete whenever i is
// complete. A forward scan computes it as the predecessor's clock merged
// with the clocks of i's completion deps plus i itself, pruning each dep
// already covered by the predecessor's clock. Every pruned edge is in the
// transitive closure of the kept edges plus thread order (inductively), so
// the closure is unchanged.
void PruneRedundantDeps(CompiledBenchmark* bench) {
  ARTC_OBS_SPAN("compiler", "prune");
  const size_t n = bench->actions.size();
  const size_t threads = bench->thread_ids.size();
  if (n == 0 || threads == 0 || bench->dep_arena.empty()) {
    return;
  }
  // Clock rows are stored sparsely: an event's cross-thread clock differs
  // from its same-thread predecessor's only if the event has completion
  // deps to merge, and on real traces the vast majority of events have
  // none. So a new row materialises only at those "merge" events; every
  // other event shares its thread's latest row (row 0 is the all-zeros
  // row). An event's own-thread entry is implicitly (index + 1) — readers
  // below account for it explicitly — which is why sharing the row with
  // later events on the thread is sound. Worst case (every event has a
  // completion dep) this still costs n*threads entries, like the dense
  // matrix; typically it is a few hundred rows.
  std::vector<uint32_t> rows(threads, 0);   // row arena, `threads` per row
  std::vector<uint32_t> row_of(n, 0);       // event -> its clock row id
  std::vector<uint32_t> cur_row(threads, 0);  // thread -> latest row id
  std::vector<Dep>& arena = bench->dep_arena;
  std::vector<uint32_t>& offsets = bench->dep_offsets;
  uint32_t write = 0;  // in-place arena compaction cursor
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t ti = bench->actions[i].thread_index;
    const uint32_t begin = offsets[i];
    const uint32_t end = offsets[i + 1];
    offsets[i] = write;  // write <= begin, so reads below stay valid
    bool merges = false;
    for (uint32_t j = begin; j < end && !merges; ++j) {
      merges = arena[j].kind == DepKind::kCompletion;
    }
    if (!merges) {
      // Issue deps are never pruned (only completion deps can be implied)
      // and don't advance the completion clock: keep them and move on.
      row_of[i] = cur_row[ti];
      for (uint32_t j = begin; j < end; ++j) {
        arena[write++] = arena[j];
      }
      continue;
    }
    const uint32_t nr_id = static_cast<uint32_t>(rows.size() / threads);
    rows.resize(rows.size() + threads);  // may reallocate: take pointers after
    uint32_t* nr = rows.data() + static_cast<size_t>(nr_id) * threads;
    // cur_row[ti] is the clock of i's same-thread predecessor p: cross-
    // thread entries only change at merge events, and the latest one on ti
    // is at or before p. If i is the first event on ti this is row 0 (all
    // zeros), which correctly implies nothing.
    const uint32_t* pr = rows.data() + static_cast<size_t>(cur_row[ti]) * threads;
    std::copy(pr, pr + threads, nr);
    for (uint32_t j = begin; j < end; ++j) {
      const Dep d = arena[j];
      if (d.kind != DepKind::kCompletion) {
        arena[write++] = d;
        continue;
      }
      // Materialised completion deps are always cross-thread (same-thread
      // ones are skipped at emission), so td != ti here.
      const uint32_t td = bench->actions[d.event].thread_index;
      if (pr[td] >= d.event + 1) {
        bench->edge_stats.pruned_by_rule[static_cast<size_t>(d.rule)]++;
      } else {
        arena[write++] = d;
      }
      // Whether kept or implied, d is complete before i issues: merge its
      // completion clock (row entries plus its implicit own entry).
      const uint32_t* dr =
          rows.data() + static_cast<size_t>(row_of[d.event]) * threads;
      for (size_t t = 0; t < threads; ++t) {
        nr[t] = std::max(nr[t], dr[t]);
      }
      nr[td] = std::max(nr[td], d.event + 1);
    }
    cur_row[ti] = nr_id;
    row_of[i] = nr_id;
  }
  offsets[n] = write;
  arena.resize(write);
}

}  // namespace

uint64_t EdgeStats::TotalEdges() const {
  uint64_t n = 0;
  for (uint64_t c : count_by_rule) {
    n += c;
  }
  return n;
}

uint64_t EdgeStats::TotalPruned() const {
  uint64_t n = 0;
  for (uint64_t c : pruned_by_rule) {
    n += c;
  }
  return n;
}

double EdgeStats::MeanLengthNs() const {
  uint64_t n = 0;
  double total = 0;
  for (size_t i = 0; i < count_by_rule.size(); ++i) {
    n += count_by_rule[i];
    total += total_length_ns[i];
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

// Shared implementation: takes the event vector by value so the public
// overloads decide whether it is copied (lvalue trace) or stolen (rvalue
// trace) — the move path makes event transfer O(1).
static CompiledBenchmark CompileImpl(std::vector<trace::TraceEvent> events,
                              const trace::FsSnapshot& snapshot,
                              const fsmodel::AnnotatedTrace& ann,
                              const CompileOptions& options) {
  ARTC_OBS_SPAN("compiler", "compile");
  ARTC_CHECK(ann.touches.size() == events.size());
  CompiledBenchmark bench;
  bench.method = options.method;
  bench.modes = options.modes;
  bench.snapshot = snapshot;
  bench.events = std::move(events);
  bench.model_warnings = ann.warnings;

  // Assign fd/aio remap slots: one per generation resource. Resource ids
  // are dense, so a flat vector beats a hash map here.
  std::vector<int32_t> fd_slots(ann.resources.size(), -1);
  std::vector<int32_t> aio_slots(ann.resources.size(), -1);
  for (uint32_t r = 0; r < ann.resources.size(); ++r) {
    if (ann.resources[r].kind == fsmodel::ResourceKind::kFd) {
      fd_slots[r] = static_cast<int32_t>(bench.fd_slot_count++);
    } else if (ann.resources[r].kind == fsmodel::ResourceKind::kAiocb) {
      aio_slots[r] = static_cast<int32_t>(bench.aio_slot_count++);
    }
  }

  // Dense replay threads. Trace tids are small integers in practice, so a
  // flat tid -> index+1 table covers the common case; anything above the
  // flat range falls back to the hash map.
  constexpr uint32_t kFlatTidLimit = 1 << 16;
  std::vector<uint32_t> tid_flat;
  std::unordered_map<uint32_t, uint32_t> tid_overflow;
  bool single = options.method == ReplayMethod::kSingleThreaded;
  if (single) {
    bench.thread_ids.push_back(0);
    bench.thread_actions.emplace_back();
  }

  // Single streaming pass: fill the action (dense thread, predelay), wire
  // remap slots, and — for ARTC — emit this event's dependency edges, all
  // while the event's touches are hot in cache.
  const bool fuse_artc = options.method == ReplayMethod::kArtc;
  const uint32_t n = static_cast<uint32_t>(bench.events.size());
  DepBuilder builder(ann, &bench);
  bench.actions.reserve(n);
  std::vector<TimeNs> last_ret_by_thread;
  TimeNs trace_start = bench.events.empty() ? 0 : bench.events.front().enter;
  for (uint32_t i = 0; i < n; ++i) {
    const trace::TraceEvent& ev = bench.events[i];
    CompiledAction& a = bench.actions.emplace_back();
    uint32_t ti;
    if (single) {
      ti = 0;
    } else {
      uint32_t* slot = nullptr;
      if (ev.tid < kFlatTidLimit) {
        if (tid_flat.size() <= ev.tid) {
          tid_flat.resize(ev.tid + 1, 0);
        }
        slot = &tid_flat[ev.tid];
      } else {
        slot = &tid_overflow[ev.tid];
      }
      if (*slot == 0) {
        ti = static_cast<uint32_t>(bench.thread_ids.size());
        *slot = ti + 1;
        bench.thread_ids.push_back(ev.tid);
        bench.thread_actions.emplace_back();
      } else {
        ti = *slot - 1;
      }
    }
    a.thread_index = ti;
    bench.thread_actions[ti].push_back(i);
    if (last_ret_by_thread.size() <= ti) {
      last_ret_by_thread.resize(ti + 1, trace_start);
    }
    a.predelay = std::max<TimeNs>(0, ev.enter - last_ret_by_thread[ti]);
    last_ret_by_thread[ti] = ev.ret_time;

    // Slot wiring from the annotation, fused with ARTC dep emission.
    if (fuse_artc) {
      builder.BeginEvent(i);
    }
    for (const fsmodel::Touch& touch : ann.touches[i]) {
      const fsmodel::ResourceInfo& res = ann.resources[touch.resource];
      if (res.kind == fsmodel::ResourceKind::kFd) {
        if (touch.access == fsmodel::Access::kCreate) {
          a.fd_def_slot = fd_slots[touch.resource];
        } else if (a.fd_use_slot < 0) {
          a.fd_use_slot = fd_slots[touch.resource];
        }
      } else if (res.kind == fsmodel::ResourceKind::kAiocb) {
        if (touch.access == fsmodel::Access::kCreate) {
          a.aio_def_slot = aio_slots[touch.resource];
        } else if (a.aio_use_slot < 0) {
          a.aio_use_slot = aio_slots[touch.resource];
        }
      }
      if (fuse_artc) {
        builder.ArtcTouch(touch, options.modes);
      }
    }
    if (fuse_artc) {
      builder.FinishEvent();
    }
  }

  // Temporal needs the fd/aio def events, i.e. a completed slot wiring
  // pass, so it cannot fuse; it runs as a second pass over the trace.
  if (options.method == ReplayMethod::kTemporal) {
    builder.EmitTemporalDeps();
  }
  bench.dep_arena_peak_bytes = bench.dep_arena.capacity() * sizeof(Dep);

  // Predelay is the interval between an action's issue and the moment its
  // inferred constraints were satisfied in the original execution (paper
  // Sec. 4.3.3): the latest of the same-thread predecessor's return and the
  // dependencies' returns. Computing it against the thread gap alone would
  // charge idle phases (e.g., a coordinator thread joining its workers) as
  // compute and replay them as sleeps. This runs against the *unpruned*
  // edge set: pruning must not change pacing.
  for (uint32_t i = 0; i < n; ++i) {
    const DepSpan deps = bench.DepsFor(i);
    if (deps.empty()) {
      continue;  // no constraints beyond the thread gap: predelay stands
    }
    CompiledAction& a = bench.actions[i];
    const TimeNs enter = bench.events[i].enter;
    TimeNs base = enter - a.predelay;  // same-thread predecessor return
    for (const Dep& d : deps) {
      base = std::max(base, bench.events[d.event].ret_time);
    }
    a.predelay = std::max<TimeNs>(0, enter - base);
  }

  if (options.method == ReplayMethod::kArtc && options.prune_redundant_deps) {
    PruneRedundantDeps(&bench);
  }
  return bench;
}

CompiledBenchmark Compile(const trace::Trace& t, const trace::FsSnapshot& snapshot,
                          const CompileOptions& options) {
  // Labels exist for debugging and fsmodel tests; the compiler never reads
  // them, so skip materializing one string per resource.
  fsmodel::AnnotateOptions ann_opts;
  ann_opts.materialize_labels = false;
  fsmodel::AnnotatedTrace ann = fsmodel::AnnotateTrace(t, snapshot, ann_opts);
  return CompileImpl(t.events, snapshot, ann, options);
}

CompiledBenchmark Compile(const trace::Trace& t, const trace::FsSnapshot& snapshot,
                          const fsmodel::AnnotatedTrace& annotated,
                          const CompileOptions& options) {
  return CompileImpl(t.events, snapshot, annotated, options);
}

CompiledBenchmark Compile(trace::Trace&& t, const trace::FsSnapshot& snapshot,
                          const CompileOptions& options) {
  fsmodel::AnnotateOptions ann_opts;
  ann_opts.materialize_labels = false;
  fsmodel::AnnotatedTrace ann = fsmodel::AnnotateTrace(t, snapshot, ann_opts);
  return CompileImpl(std::move(t.events), snapshot, ann, options);
}

CompiledBenchmark Compile(trace::Trace&& t, const trace::FsSnapshot& snapshot,
                          const fsmodel::AnnotatedTrace& annotated,
                          const CompileOptions& options) {
  return CompileImpl(std::move(t.events), snapshot, annotated, options);
}

}  // namespace artc::core

#include "src/core/compiler.h"

#include <algorithm>
#include <unordered_map>

#include "src/core/dep_builder.h"
#include "src/fsmodel/resource_model.h"
#include "src/obs/obs.h"
#include "src/util/check.h"

namespace artc::core {
namespace {

using fsmodel::AnnotatedTrace;
using internal::DepBuilder;
using internal::DepPruner;
using internal::EventMeta;

// Flushes the builder's scratch (event cur's deps) into the CSR arena.
void FlushDeps(DepBuilder& builder, uint32_t index, CompiledBenchmark* out) {
  std::vector<Dep>& arena = out->dep_arena;
  const std::vector<Dep>& deps = builder.deps();
  arena.insert(arena.end(), deps.begin(), deps.end());
  out->dep_offsets[index + 1] = static_cast<uint32_t>(arena.size());
}

// Temporal-method emission. Issue ordering alone does not guarantee that
// the open defining a cross-thread descriptor has *completed* (and
// therefore filled the remap slot) before a use on another thread executes.
// Fold in the minimal infrastructure deps so the temporal baseline is
// runnable, as in the paper. These are not counted as ordering edges. Each
// fd/aio slot is one generation, so it has exactly one defining event —
// precompute them so emission stays a single forward pass.
void EmitTemporalDeps(DepBuilder& builder, CompiledBenchmark* out) {
  std::vector<uint32_t> fd_def(out->fd_slot_count, kNoEvent);
  std::vector<uint32_t> aio_def(out->aio_slot_count, kNoEvent);
  for (uint32_t i = 0; i < out->actions.size(); ++i) {
    const CompiledAction& a = out->actions[i];
    if (a.fd_def_slot >= 0) {
      fd_def[static_cast<size_t>(a.fd_def_slot)] = i;
    }
    if (a.aio_def_slot >= 0) {
      aio_def[static_cast<size_t>(a.aio_def_slot)] = i;
    }
  }
  for (uint32_t i = 0; i < out->events.size(); ++i) {
    builder.BeginEvent(i, 4);
    if (i > 0) {
      builder.AddDep(i - 1, DepKind::kIssue, RuleTag::kTemporal);
    }
    const CompiledAction& a = out->actions[i];
    if (a.fd_use_slot >= 0) {
      builder.AddInfraDep(fd_def[static_cast<size_t>(a.fd_use_slot)]);
    }
    if (a.aio_use_slot >= 0) {
      builder.AddInfraDep(aio_def[static_cast<size_t>(a.aio_use_slot)]);
    }
    FlushDeps(builder, i, out);
  }
}

// Batch redundant-edge pruning: drives the incremental DepPruner over the
// fully built arena, compacting it in place (see dep_builder.h for the
// clock construction and the safety argument).
void PruneRedundantDeps(const EventMeta& meta, CompiledBenchmark* bench) {
  ARTC_OBS_SPAN("compiler", "prune");
  const size_t n = bench->actions.size();
  if (n == 0 || bench->thread_ids.empty() || bench->dep_arena.empty()) {
    return;
  }
  DepPruner pruner(meta, &bench->edge_stats);
  std::vector<Dep>& arena = bench->dep_arena;
  std::vector<uint32_t>& offsets = bench->dep_offsets;
  uint32_t write = 0;  // in-place arena compaction cursor
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t begin = offsets[i];
    const uint32_t count = offsets[i + 1] - begin;
    offsets[i] = write;  // write <= begin, so the pruner's reads stay valid
    const uint32_t kept =
        pruner.PruneEvent(i, meta.thread_index[i], arena.data() + begin, count);
    for (uint32_t j = 0; j < kept; ++j) {
      arena[write++] = arena[begin + j];
    }
  }
  offsets[n] = write;
  arena.resize(write);
}

}  // namespace

uint64_t EdgeStats::TotalEdges() const {
  uint64_t n = 0;
  for (uint64_t c : count_by_rule) {
    n += c;
  }
  return n;
}

uint64_t EdgeStats::TotalPruned() const {
  uint64_t n = 0;
  for (uint64_t c : pruned_by_rule) {
    n += c;
  }
  return n;
}

double EdgeStats::MeanLengthNs() const {
  uint64_t n = 0;
  double total = 0;
  for (size_t i = 0; i < count_by_rule.size(); ++i) {
    n += count_by_rule[i];
    total += total_length_ns[i];
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

// Shared implementation: takes the event vector by value so the public
// overloads decide whether it is copied (lvalue trace) or stolen (rvalue
// trace) — the move path makes event transfer O(1).
static CompiledBenchmark CompileImpl(std::vector<trace::TraceEvent> events,
                              const trace::FsSnapshot& snapshot,
                              const fsmodel::AnnotatedTrace& ann,
                              const CompileOptions& options) {
  ARTC_OBS_SPAN("compiler", "compile");
  ARTC_CHECK(ann.touches.size() == events.size());
  CompiledBenchmark bench;
  bench.method = options.method;
  bench.modes = options.modes;
  bench.snapshot = snapshot;
  bench.events = std::move(events);
  bench.model_warnings = ann.warnings;

  // Assign fd/aio remap slots: one per generation resource. Resource ids
  // are dense, so a flat vector beats a hash map here.
  std::vector<int32_t> fd_slots(ann.resources.size(), -1);
  std::vector<int32_t> aio_slots(ann.resources.size(), -1);
  for (uint32_t r = 0; r < ann.resources.size(); ++r) {
    if (ann.resources[r].kind == fsmodel::ResourceKind::kFd) {
      fd_slots[r] = static_cast<int32_t>(bench.fd_slot_count++);
    } else if (ann.resources[r].kind == fsmodel::ResourceKind::kAiocb) {
      aio_slots[r] = static_cast<int32_t>(bench.aio_slot_count++);
    }
  }

  // Dense replay threads. Trace tids are small integers in practice, so a
  // flat tid -> index+1 table covers the common case; anything above the
  // flat range falls back to the hash map.
  constexpr uint32_t kFlatTidLimit = 1 << 16;
  std::vector<uint32_t> tid_flat;
  std::unordered_map<uint32_t, uint32_t> tid_overflow;
  bool single = options.method == ReplayMethod::kSingleThreaded;
  if (single) {
    bench.thread_ids.push_back(0);
    bench.thread_actions.emplace_back();
  }

  // Single streaming pass: fill the action (dense thread, predelay), wire
  // remap slots, and — for ARTC — emit this event's dependency edges, all
  // while the event's touches are hot in cache.
  const bool fuse_artc = options.method == ReplayMethod::kArtc;
  const uint32_t n = static_cast<uint32_t>(bench.events.size());
  EventMeta meta;
  meta.thread_index.reserve(n);
  meta.enter.reserve(n);
  meta.ret_time.reserve(n);
  DepBuilder builder(ann.resources, ann.path_names.get(), meta,
                     &bench.dep_resource_names, &bench.edge_stats);
  bench.dep_arena.clear();
  bench.dep_offsets.assign(bench.events.size() + 1, 0);
  bench.actions.reserve(n);
  std::vector<TimeNs> last_ret_by_thread;
  TimeNs trace_start = bench.events.empty() ? 0 : bench.events.front().enter;
  for (uint32_t i = 0; i < n; ++i) {
    const trace::TraceEvent& ev = bench.events[i];
    CompiledAction& a = bench.actions.emplace_back();
    uint32_t ti;
    if (single) {
      ti = 0;
    } else {
      uint32_t* slot = nullptr;
      if (ev.tid < kFlatTidLimit) {
        if (tid_flat.size() <= ev.tid) {
          tid_flat.resize(ev.tid + 1, 0);
        }
        slot = &tid_flat[ev.tid];
      } else {
        slot = &tid_overflow[ev.tid];
      }
      if (*slot == 0) {
        ti = static_cast<uint32_t>(bench.thread_ids.size());
        *slot = ti + 1;
        bench.thread_ids.push_back(ev.tid);
        bench.thread_actions.emplace_back();
      } else {
        ti = *slot - 1;
      }
    }
    a.thread_index = ti;
    meta.Push(ti, ev);
    bench.thread_actions[ti].push_back(i);
    if (last_ret_by_thread.size() <= ti) {
      last_ret_by_thread.resize(ti + 1, trace_start);
    }
    a.predelay = std::max<TimeNs>(0, ev.enter - last_ret_by_thread[ti]);
    last_ret_by_thread[ti] = ev.ret_time;

    // Slot wiring from the annotation, fused with ARTC dep emission.
    if (fuse_artc) {
      // Each touch yields at most one dep plus the create edge; a little
      // headroom avoids regrowth on delete events with many outstanding
      // uses.
      builder.BeginEvent(i, ann.touches[i].size() + 2);
    }
    for (const fsmodel::Touch& touch : ann.touches[i]) {
      const fsmodel::ResourceInfo& res = ann.resources[touch.resource];
      if (res.kind == fsmodel::ResourceKind::kFd) {
        if (touch.access == fsmodel::Access::kCreate) {
          a.fd_def_slot = fd_slots[touch.resource];
        } else if (a.fd_use_slot < 0) {
          a.fd_use_slot = fd_slots[touch.resource];
        }
      } else if (res.kind == fsmodel::ResourceKind::kAiocb) {
        if (touch.access == fsmodel::Access::kCreate) {
          a.aio_def_slot = aio_slots[touch.resource];
        } else if (a.aio_use_slot < 0) {
          a.aio_use_slot = aio_slots[touch.resource];
        }
      }
      if (fuse_artc) {
        builder.ArtcTouch(touch, options.modes);
      }
    }
    if (fuse_artc) {
      FlushDeps(builder, i, &bench);
    }
  }

  // Temporal needs the fd/aio def events, i.e. a completed slot wiring
  // pass, so it cannot fuse; it runs as a second pass over the trace.
  if (options.method == ReplayMethod::kTemporal) {
    EmitTemporalDeps(builder, &bench);
  }
  bench.dep_arena_peak_bytes = bench.dep_arena.capacity() * sizeof(Dep);

  // Predelay is the interval between an action's issue and the moment its
  // inferred constraints were satisfied in the original execution (paper
  // Sec. 4.3.3): the latest of the same-thread predecessor's return and the
  // dependencies' returns. Computing it against the thread gap alone would
  // charge idle phases (e.g., a coordinator thread joining its workers) as
  // compute and replay them as sleeps. This runs against the *unpruned*
  // edge set: pruning must not change pacing.
  for (uint32_t i = 0; i < n; ++i) {
    const DepSpan deps = bench.DepsFor(i);
    if (deps.empty()) {
      continue;  // no constraints beyond the thread gap: predelay stands
    }
    CompiledAction& a = bench.actions[i];
    const TimeNs enter = bench.events[i].enter;
    TimeNs base = enter - a.predelay;  // same-thread predecessor return
    for (const Dep& d : deps) {
      base = std::max(base, bench.events[d.event].ret_time);
    }
    a.predelay = std::max<TimeNs>(0, enter - base);
  }

  if (options.method == ReplayMethod::kArtc && options.prune_redundant_deps) {
    PruneRedundantDeps(meta, &bench);
  }
  return bench;
}

CompiledBenchmark Compile(const trace::Trace& t, const trace::FsSnapshot& snapshot,
                          const CompileOptions& options) {
  // Labels exist for debugging and fsmodel tests; the compiler never reads
  // them, so skip materializing one string per resource.
  fsmodel::AnnotateOptions ann_opts;
  ann_opts.materialize_labels = false;
  fsmodel::AnnotatedTrace ann = fsmodel::AnnotateTrace(t, snapshot, ann_opts);
  return CompileImpl(t.events, snapshot, ann, options);
}

CompiledBenchmark Compile(const trace::Trace& t, const trace::FsSnapshot& snapshot,
                          const fsmodel::AnnotatedTrace& annotated,
                          const CompileOptions& options) {
  return CompileImpl(t.events, snapshot, annotated, options);
}

CompiledBenchmark Compile(trace::Trace&& t, const trace::FsSnapshot& snapshot,
                          const CompileOptions& options) {
  fsmodel::AnnotateOptions ann_opts;
  ann_opts.materialize_labels = false;
  fsmodel::AnnotatedTrace ann = fsmodel::AnnotateTrace(t, snapshot, ann_opts);
  return CompileImpl(std::move(t.events), snapshot, ann, options);
}

CompiledBenchmark Compile(trace::Trace&& t, const trace::FsSnapshot& snapshot,
                          const fsmodel::AnnotatedTrace& annotated,
                          const CompileOptions& options) {
  return CompileImpl(std::move(t.events), snapshot, annotated, options);
}

CompiledBenchmarkPtr CompileShared(const trace::Trace& t,
                                   const trace::FsSnapshot& snapshot,
                                   const CompileOptions& options) {
  return std::make_shared<const CompiledBenchmark>(Compile(t, snapshot, options));
}

CompiledBenchmarkPtr CompileShared(const trace::Trace& t,
                                   const trace::FsSnapshot& snapshot,
                                   const fsmodel::AnnotatedTrace& annotated,
                                   const CompileOptions& options) {
  return std::make_shared<const CompiledBenchmark>(
      Compile(t, snapshot, annotated, options));
}

CompiledBenchmarkPtr CompileShared(trace::Trace&& t,
                                   const trace::FsSnapshot& snapshot,
                                   const fsmodel::AnnotatedTrace& annotated,
                                   const CompileOptions& options) {
  return std::make_shared<const CompiledBenchmark>(
      Compile(std::move(t), snapshot, annotated, options));
}

}  // namespace artc::core

// The compiled benchmark: the output of the ARTC compiler and the input of
// the replayer (paper Sec. 4.3.1). Conceptually this plays the role of the
// generated-C-plus-shared-library artifact in the original system: static
// tables of actions, resources (fd/aio remap slots), and dependencies.
#ifndef SRC_CORE_COMPILED_H_
#define SRC_CORE_COMPILED_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/modes.h"
#include "src/trace/event.h"
#include "src/trace/snapshot.h"

namespace artc::core {

inline constexpr uint32_t kNoEvent = UINT32_MAX;

// Compact id of the resource an edge orders on, indexing
// CompiledBenchmark::dep_resource_names. Infrastructure edges (temporal
// issue order, fd/aio remap plumbing) carry kNoDepResource.
inline constexpr uint32_t kNoDepResource = UINT32_MAX;

enum class DepKind : uint8_t {
  kCompletion,  // dependency must have finished replaying
  kIssue,       // dependency must have been issued
};

struct Dep {
  uint32_t event;   // trace index of the prerequisite action
  DepKind kind;
  RuleTag rule;     // which ordering rule produced this edge (stats)
  // Which resource the rule ordered on (attribution). Generations of the
  // same name share one id, so "every stall behind /a/b" aggregates
  // across create/delete cycles.
  uint32_t res = kNoDepResource;
};

// A view over one action's dependencies inside the shared dep arena.
struct DepSpan {
  const Dep* first = nullptr;
  const Dep* last = nullptr;
  const Dep* begin() const { return first; }
  const Dep* end() const { return last; }
  size_t size() const { return static_cast<size_t>(last - first); }
  bool empty() const { return first == last; }
  const Dep& operator[](size_t i) const { return first[i]; }
};

// Per-action replay metadata. The original trace event (arguments +
// expected outcome) lives in CompiledBenchmark::events at the same index:
// keeping the strings out of this struct makes it a small POD the replay
// hot loop can walk without dragging argument data through the cache.
struct CompiledAction {
  uint32_t thread_index = 0;   // dense replay-thread index
  // File-descriptor remapping (Sec. 4.2: fd names are remapped through a
  // table so generations that reused a number can coexist): slot to *read*
  // the runtime fd from, and slot to *store* a newly created fd into.
  int32_t fd_use_slot = -1;
  int32_t fd_def_slot = -1;
  // AIO handle remapping, same scheme.
  int32_t aio_use_slot = -1;
  int32_t aio_def_slot = -1;
  // Time between this action's issue and the return of the previous action
  // on the same thread in the original trace — the paper's "predelay".
  TimeNs predelay = 0;
};

struct EdgeStats {
  // Edges emitted by each rule, *before* redundant-edge pruning — this is
  // what the paper's Fig. 8 tables report.
  std::array<uint64_t, static_cast<size_t>(RuleTag::kCount)> count_by_rule{};
  std::array<double, static_cast<size_t>(RuleTag::kCount)> total_length_ns{};
  // Of the above, edges dropped as transitively implied (never materialized
  // in the dep arena the replayer walks).
  std::array<uint64_t, static_cast<size_t>(RuleTag::kCount)> pruned_by_rule{};
  uint64_t TotalEdges() const;
  uint64_t TotalPruned() const;
  double MeanLengthNs() const;  // across all rules
};

struct CompiledBenchmark {
  ReplayMethod method = ReplayMethod::kArtc;
  ReplayModes modes;
  std::vector<CompiledAction> actions;          // indexed by trace order
  // events[i] is actions[i]'s original trace event. The compiler moving an
  // rvalue trace in steals this vector wholesale instead of copying ~200
  // bytes per event.
  std::vector<trace::TraceEvent> events;
  std::vector<std::vector<uint32_t>> thread_actions;  // per replay thread
  std::vector<uint32_t> thread_ids;             // original tid per replay thread
  uint32_t fd_slot_count = 0;
  uint32_t aio_slot_count = 0;
  trace::FsSnapshot snapshot;
  EdgeStats edge_stats;
  uint64_t model_warnings = 0;

  // Dependencies in compressed-sparse-row form: the deps of action i are
  // dep_arena[dep_offsets[i] .. dep_offsets[i+1]). One contiguous arena
  // instead of a heap vector per action keeps the replay hot loop walking
  // sequential memory.
  std::vector<Dep> dep_arena;
  std::vector<uint32_t> dep_offsets;  // size() + 1 entries; empty when size()==0
  uint64_t dep_arena_peak_bytes = 0;  // arena high-water mark during compile

  // Human-readable names for Dep::res ids, assigned densely in edge-emission
  // order: literal paths for path-rule edges, "fd:N" / "file#N" / "aio:N" /
  // "thread:N" for the others. Only resources that actually produced a
  // materialized edge get an entry, so the table stays small.
  std::vector<std::string> dep_resource_names;

  const std::string& DepResourceName(uint32_t res) const {
    static const std::string kNone = "(none)";
    return res < dep_resource_names.size() ? dep_resource_names[res] : kNone;
  }

  DepSpan DepsFor(uint32_t action) const {
    const Dep* base = dep_arena.data();
    return DepSpan{base + dep_offsets[action], base + dep_offsets[action + 1]};
  }

  size_t size() const { return actions.size(); }
};

}  // namespace artc::core

#endif  // SRC_CORE_COMPILED_H_

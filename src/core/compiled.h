// The compiled benchmark: the output of the ARTC compiler and the input of
// the replayer (paper Sec. 4.3.1). Conceptually this plays the role of the
// generated-C-plus-shared-library artifact in the original system: static
// tables of actions, resources (fd/aio remap slots), and dependencies.
#ifndef SRC_CORE_COMPILED_H_
#define SRC_CORE_COMPILED_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/modes.h"
#include "src/trace/event.h"
#include "src/trace/snapshot.h"

namespace artc::core {

inline constexpr uint32_t kNoEvent = UINT32_MAX;

enum class DepKind : uint8_t {
  kCompletion,  // dependency must have finished replaying
  kIssue,       // dependency must have been issued
};

struct Dep {
  uint32_t event;   // trace index of the prerequisite action
  DepKind kind;
  RuleTag rule;     // which ordering rule produced this edge (stats)
};

struct CompiledAction {
  trace::TraceEvent ev;        // original event: args + expected outcome
  uint32_t thread_index = 0;   // dense replay-thread index
  // File-descriptor remapping (Sec. 4.2: fd names are remapped through a
  // table so generations that reused a number can coexist): slot to *read*
  // the runtime fd from, and slot to *store* a newly created fd into.
  int32_t fd_use_slot = -1;
  int32_t fd_def_slot = -1;
  // AIO handle remapping, same scheme.
  int32_t aio_use_slot = -1;
  int32_t aio_def_slot = -1;
  // Time between this action's issue and the return of the previous action
  // on the same thread in the original trace — the paper's "predelay".
  TimeNs predelay = 0;
  std::vector<Dep> deps;
};

struct EdgeStats {
  std::array<uint64_t, static_cast<size_t>(RuleTag::kCount)> count_by_rule{};
  std::array<double, static_cast<size_t>(RuleTag::kCount)> total_length_ns{};
  uint64_t TotalEdges() const;
  double MeanLengthNs() const;  // across all rules
};

struct CompiledBenchmark {
  ReplayMethod method = ReplayMethod::kArtc;
  ReplayModes modes;
  std::vector<CompiledAction> actions;          // indexed by trace order
  std::vector<std::vector<uint32_t>> thread_actions;  // per replay thread
  std::vector<uint32_t> thread_ids;             // original tid per replay thread
  uint32_t fd_slot_count = 0;
  uint32_t aio_slot_count = 0;
  trace::FsSnapshot snapshot;
  EdgeStats edge_stats;
  uint64_t model_warnings = 0;

  size_t size() const { return actions.size(); }
};

}  // namespace artc::core

#endif  // SRC_CORE_COMPILED_H_

#include "src/core/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "src/util/check.h"

namespace artc::core {
namespace {

constexpr char kMagic[8] = {'A', 'R', 'T', 'C', 'B', '0', '0', '5'};

// Minimal length-prefixed binary writer/reader. All integers little-endian
// native (the file is a local build artifact, not an interchange format).
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}
  void Bytes(const void* p, size_t n) { out_.write(static_cast<const char*>(p),
                                                   static_cast<std::streamsize>(n)); }
  template <typename T>
  void Pod(T v) {
    Bytes(&v, sizeof(T));
  }
  void Str(const std::string& s) {
    Pod<uint32_t>(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

 private:
  std::ostream& out_;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}
  void Bytes(void* p, size_t n) {
    in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    ARTC_CHECK_MSG(in_.good(), "truncated benchmark file");
  }
  template <typename T>
  T Pod() {
    T v;
    Bytes(&v, sizeof(T));
    return v;
  }
  std::string Str() {
    uint32_t n = Pod<uint32_t>();
    ARTC_CHECK_MSG(n < (64u << 20), "implausible string length in benchmark file");
    std::string s(n, '\0');
    if (n > 0) {
      Bytes(s.data(), n);
    }
    return s;
  }

 private:
  std::istream& in_;
};

void WriteEvent(Writer& w, const trace::TraceEvent& ev) {
  w.Pod<uint64_t>(ev.index);
  w.Pod<uint32_t>(ev.tid);
  w.Pod<uint16_t>(static_cast<uint16_t>(ev.call));
  w.Pod<int64_t>(ev.enter);
  w.Pod<int64_t>(ev.ret_time);
  w.Pod<int64_t>(ev.ret);
  w.Str(ev.path);
  w.Str(ev.path2);
  w.Pod<int32_t>(ev.fd);
  w.Pod<int32_t>(ev.fd2);
  w.Pod<int64_t>(ev.offset);
  w.Pod<uint64_t>(ev.size);
  w.Pod<uint32_t>(ev.flags);
  w.Pod<uint32_t>(ev.mode);
  w.Pod<int32_t>(ev.whence);
  w.Str(ev.name);
  w.Pod<uint64_t>(ev.aio_id);
  w.Pod<uint64_t>(ev.sync_id);
}

trace::TraceEvent ReadEvent(Reader& r) {
  trace::TraceEvent ev;
  ev.index = r.Pod<uint64_t>();
  ev.tid = r.Pod<uint32_t>();
  uint16_t call = r.Pod<uint16_t>();
  ARTC_CHECK_MSG(call < trace::kSysCount, "bad call id in benchmark file");
  ev.call = static_cast<trace::Sys>(call);
  ev.enter = r.Pod<int64_t>();
  ev.ret_time = r.Pod<int64_t>();
  ev.ret = r.Pod<int64_t>();
  ev.path = r.Str();
  ev.path2 = r.Str();
  ev.fd = r.Pod<int32_t>();
  ev.fd2 = r.Pod<int32_t>();
  ev.offset = r.Pod<int64_t>();
  ev.size = r.Pod<uint64_t>();
  ev.flags = r.Pod<uint32_t>();
  ev.mode = r.Pod<uint32_t>();
  ev.whence = r.Pod<int32_t>();
  ev.name = r.Str();
  ev.aio_id = r.Pod<uint64_t>();
  ev.sync_id = r.Pod<uint64_t>();
  return ev;
}

}  // namespace

void WriteBenchmark(const CompiledBenchmark& bench, std::ostream& out) {
  Writer w(out);
  w.Bytes(kMagic, sizeof(kMagic));
  w.Pod<uint8_t>(static_cast<uint8_t>(bench.method));
  w.Pod<uint8_t>(bench.modes.file_seq);
  w.Pod<uint8_t>(bench.modes.path_stage_name);
  w.Pod<uint8_t>(bench.modes.fd_stage);
  w.Pod<uint8_t>(bench.modes.fd_seq);
  w.Pod<uint8_t>(bench.modes.aio_stage);
  w.Pod<uint8_t>(bench.modes.sync_rules);
  w.Pod<uint32_t>(bench.fd_slot_count);
  w.Pod<uint32_t>(bench.aio_slot_count);
  w.Pod<uint64_t>(bench.model_warnings);

  w.Pod<uint64_t>(bench.actions.size());
  for (size_t i = 0; i < bench.actions.size(); ++i) {
    const CompiledAction& a = bench.actions[i];
    WriteEvent(w, bench.events[i]);
    w.Pod<uint32_t>(a.thread_index);
    w.Pod<int32_t>(a.fd_use_slot);
    w.Pod<int32_t>(a.fd_def_slot);
    w.Pod<int32_t>(a.aio_use_slot);
    w.Pod<int32_t>(a.aio_def_slot);
    w.Pod<int64_t>(a.predelay);
  }

  // Dependency CSR: offsets then the arena.
  w.Pod<uint64_t>(bench.dep_arena.size());
  for (size_t i = 0; i < bench.actions.size(); ++i) {
    w.Pod<uint32_t>(bench.dep_offsets[i + 1]);
  }
  for (const Dep& d : bench.dep_arena) {
    w.Pod<uint32_t>(d.event);
    w.Pod<uint8_t>(static_cast<uint8_t>(d.kind));
    w.Pod<uint8_t>(static_cast<uint8_t>(d.rule));
    w.Pod<uint32_t>(d.res);
  }
  w.Pod<uint64_t>(bench.dep_arena_peak_bytes);
  w.Pod<uint32_t>(static_cast<uint32_t>(bench.dep_resource_names.size()));
  for (const std::string& name : bench.dep_resource_names) {
    w.Str(name);
  }

  w.Pod<uint32_t>(static_cast<uint32_t>(bench.thread_ids.size()));
  for (uint32_t tid : bench.thread_ids) {
    w.Pod<uint32_t>(tid);
  }

  w.Pod<uint32_t>(static_cast<uint32_t>(bench.snapshot.entries.size()));
  for (const trace::SnapshotEntry& e : bench.snapshot.entries) {
    w.Pod<uint8_t>(static_cast<uint8_t>(e.type));
    w.Str(e.path);
    w.Pod<uint64_t>(e.size);
    w.Str(e.symlink_target);
    w.Str(e.special_kind);
    w.Pod<uint32_t>(static_cast<uint32_t>(e.xattr_names.size()));
    for (const std::string& x : e.xattr_names) {
      w.Str(x);
    }
  }

  for (size_t i = 0; i < bench.edge_stats.count_by_rule.size(); ++i) {
    w.Pod<uint64_t>(bench.edge_stats.count_by_rule[i]);
    w.Pod<double>(bench.edge_stats.total_length_ns[i]);
    w.Pod<uint64_t>(bench.edge_stats.pruned_by_rule[i]);
  }
}

CompiledBenchmark ReadBenchmark(std::istream& in) {
  Reader r(in);
  char magic[8];
  r.Bytes(magic, sizeof(magic));
  ARTC_CHECK_MSG(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 "not an ARTC benchmark file (bad magic)");
  CompiledBenchmark bench;
  bench.method = static_cast<ReplayMethod>(r.Pod<uint8_t>());
  bench.modes.file_seq = r.Pod<uint8_t>() != 0;
  bench.modes.path_stage_name = r.Pod<uint8_t>() != 0;
  bench.modes.fd_stage = r.Pod<uint8_t>() != 0;
  bench.modes.fd_seq = r.Pod<uint8_t>() != 0;
  bench.modes.aio_stage = r.Pod<uint8_t>() != 0;
  bench.modes.sync_rules = r.Pod<uint8_t>() != 0;
  bench.fd_slot_count = r.Pod<uint32_t>();
  bench.aio_slot_count = r.Pod<uint32_t>();
  bench.model_warnings = r.Pod<uint64_t>();

  uint64_t n_actions = r.Pod<uint64_t>();
  ARTC_CHECK_MSG(n_actions < (1ULL << 32), "implausible action count");
  bench.actions.reserve(n_actions);
  bench.events.reserve(n_actions);
  for (uint64_t i = 0; i < n_actions; ++i) {
    bench.events.push_back(ReadEvent(r));
    CompiledAction a;
    a.thread_index = r.Pod<uint32_t>();
    a.fd_use_slot = r.Pod<int32_t>();
    a.fd_def_slot = r.Pod<int32_t>();
    a.aio_use_slot = r.Pod<int32_t>();
    a.aio_def_slot = r.Pod<int32_t>();
    a.predelay = r.Pod<int64_t>();
    bench.actions.push_back(a);
  }

  uint64_t n_deps = r.Pod<uint64_t>();
  ARTC_CHECK_MSG(n_deps < (1ULL << 32), "implausible dep count");
  bench.dep_offsets.assign(n_actions + 1, 0);
  for (uint64_t i = 0; i < n_actions; ++i) {
    uint32_t off = r.Pod<uint32_t>();
    ARTC_CHECK(off >= bench.dep_offsets[i] && off <= n_deps);
    bench.dep_offsets[i + 1] = off;
  }
  ARTC_CHECK(bench.dep_offsets[n_actions] == n_deps);
  bench.dep_arena.reserve(n_deps);
  for (uint64_t d = 0; d < n_deps; ++d) {
    Dep dep;
    dep.event = r.Pod<uint32_t>();
    dep.kind = static_cast<DepKind>(r.Pod<uint8_t>());
    dep.rule = static_cast<RuleTag>(r.Pod<uint8_t>());
    dep.res = r.Pod<uint32_t>();
    bench.dep_arena.push_back(dep);
  }
  // Every dep must point backward from its owning action.
  for (uint64_t i = 0; i < n_actions; ++i) {
    for (const Dep& dep : bench.DepsFor(static_cast<uint32_t>(i))) {
      ARTC_CHECK(dep.event < i);
    }
  }
  bench.dep_arena_peak_bytes = r.Pod<uint64_t>();
  uint32_t n_res_names = r.Pod<uint32_t>();
  ARTC_CHECK_MSG(n_res_names < (1u << 28), "implausible resource-name count");
  bench.dep_resource_names.reserve(n_res_names);
  for (uint32_t i = 0; i < n_res_names; ++i) {
    bench.dep_resource_names.push_back(r.Str());
  }

  uint32_t n_threads = r.Pod<uint32_t>();
  bench.thread_ids.reserve(n_threads);
  bench.thread_actions.resize(n_threads);
  for (uint32_t i = 0; i < n_threads; ++i) {
    bench.thread_ids.push_back(r.Pod<uint32_t>());
  }
  for (uint32_t i = 0; i < n_actions; ++i) {
    ARTC_CHECK(bench.actions[i].thread_index < n_threads);
    bench.thread_actions[bench.actions[i].thread_index].push_back(i);
  }

  uint32_t n_entries = r.Pod<uint32_t>();
  bench.snapshot.entries.reserve(n_entries);
  for (uint32_t i = 0; i < n_entries; ++i) {
    trace::SnapshotEntry e;
    e.type = static_cast<trace::SnapshotEntryType>(r.Pod<uint8_t>());
    e.path = r.Str();
    e.size = r.Pod<uint64_t>();
    e.symlink_target = r.Str();
    e.special_kind = r.Str();
    uint32_t nx = r.Pod<uint32_t>();
    for (uint32_t x = 0; x < nx; ++x) {
      e.xattr_names.push_back(r.Str());
    }
    bench.snapshot.entries.push_back(std::move(e));
  }

  for (size_t i = 0; i < bench.edge_stats.count_by_rule.size(); ++i) {
    bench.edge_stats.count_by_rule[i] = r.Pod<uint64_t>();
    bench.edge_stats.total_length_ns[i] = r.Pod<double>();
    bench.edge_stats.pruned_by_rule[i] = r.Pod<uint64_t>();
  }
  return bench;
}

void WriteBenchmarkFile(const CompiledBenchmark& bench, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  ARTC_CHECK_MSG(out.good(), "cannot write benchmark file %s", path.c_str());
  WriteBenchmark(bench, out);
}

CompiledBenchmark ReadBenchmarkFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ARTC_CHECK_MSG(in.good(), "cannot read benchmark file %s", path.c_str());
  return ReadBenchmark(in);
}

}  // namespace artc::core

#include "src/core/posix_env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <thread>

#include "src/util/check.h"
#include "src/util/strings.h"

#if defined(__linux__)
#include <sys/xattr.h>
#define ARTC_HAVE_XATTR 1
#else
#define ARTC_HAVE_XATTR 0
#endif

namespace artc::core {

using trace::Sys;

namespace {

// Maps a host errno to the portable errno values traces use.
int64_t PortableErr() {
  switch (errno) {
    case EPERM:
      return -trace::kEPERM;
    case ENOENT:
      return -trace::kENOENT;
    case EBADF:
      return -trace::kEBADF;
    case EACCES:
      return -trace::kEACCES;
    case EEXIST:
      return -trace::kEEXIST;
    case EXDEV:
      return -trace::kEXDEV;
    case ENOTDIR:
      return -trace::kENOTDIR;
    case EISDIR:
      return -trace::kEISDIR;
    case EINVAL:
      return -trace::kEINVAL;
    case ENOSPC:
      return -trace::kENOSPC;
    case EROFS:
      return -trace::kEROFS;
    case ERANGE:
      return -trace::kERANGE;
    case ENOTEMPTY:
      return -trace::kENOTEMPTY;
    case ELOOP:
      return -trace::kELOOP;
#ifdef ENODATA
    case ENODATA:
      return -trace::kENODATA;
#endif
#ifdef EOPNOTSUPP
    case EOPNOTSUPP:
      return -trace::kENOTSUP;
#endif
    default:
      return -trace::kEINVAL;
  }
}

int64_t RetOf(int64_t host_ret) { return host_ret >= 0 ? host_ret : PortableErr(); }

int HostOpenFlags(uint32_t flags) {
  int f = 0;
  bool r = flags & trace::kOpenRead;
  bool w = flags & trace::kOpenWrite;
  if (r && w) {
    f = O_RDWR;
  } else if (w) {
    f = O_WRONLY;
  } else {
    f = O_RDONLY;
  }
  if (flags & trace::kOpenCreate) {
    f |= O_CREAT;
  }
  if (flags & trace::kOpenExcl) {
    f |= O_EXCL;
  }
  if (flags & trace::kOpenTrunc) {
    f |= O_TRUNC;
  }
  if (flags & trace::kOpenAppend) {
    f |= O_APPEND;
  }
  if (flags & trace::kOpenDirectory) {
    f |= O_DIRECTORY;
  }
  if (flags & trace::kOpenNoFollow) {
    f |= O_NOFOLLOW;
  }
  return f;
}

// Linux only accepts extended attributes in specific namespaces ("user.",
// "trusted.", ...); OS X traces carry names like "com.apple.FinderInfo".
// Map every traced name into the user namespace for the sandbox replay.
std::string HostXattrName(const std::string& name) {
  if (name.rfind("user.", 0) == 0) {
    return name;
  }
  return "user.artc." + name;
}

// Scratch buffer for real read/write payloads, reused per thread.
thread_local std::vector<char> g_buffer;

char* Buffer(size_t n) {
  if (g_buffer.size() < n) {
    g_buffer.resize(n);
  }
  return g_buffer.data();
}

}  // namespace

PosixReplayEnv::PosixReplayEnv(std::string root, EmulationPolicy policy)
    : root_(std::move(root)), policy_(std::move(policy)) {
  while (!root_.empty() && root_.back() == '/') {
    root_.pop_back();
  }
  ARTC_CHECK_MSG(!root_.empty(), "sandbox root must be non-empty");
}

TimeNs PosixReplayEnv::Now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void PosixReplayEnv::SleepNs(TimeNs d) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(d));
}

void PosixReplayEnv::RunThreads(size_t n, std::function<void(size_t)> body) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([body, i] { body(i); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

std::string PosixReplayEnv::Translate(const std::string& trace_path) const {
  return root_ + NormalizePath(trace_path);
}

void PosixReplayEnv::Initialize(const trace::FsSnapshot& snapshot) {
  for (const trace::SnapshotEntry& e : snapshot.entries) {
    std::string host = Translate(e.path);
    switch (e.type) {
      case trace::SnapshotEntryType::kDir:
        ::mkdir(host.c_str(), 0755);
        break;
      case trace::SnapshotEntryType::kFile: {
        int fd = ::open(host.c_str(), O_CREAT | O_WRONLY, 0644);
        if (fd >= 0) {
          // Populate with arbitrary data by extending to the traced size
          // (sparse, so large initializations stay fast on tmpfs).
          if (e.size > 0) {
            ARTC_CHECK(::ftruncate(fd, static_cast<off_t>(e.size)) == 0);
          }
#if ARTC_HAVE_XATTR
          for (const std::string& x : e.xattr_names) {
            ::fsetxattr(fd, HostXattrName(x).c_str(), "artc", 4, 0);
          }
#endif
          ::close(fd);
        }
        break;
      }
      case trace::SnapshotEntryType::kSymlink: {
        std::string target = e.symlink_target;
        if (!target.empty() && target[0] == '/') {
          target = Translate(target);
        }
        ::symlink(target.c_str(), host.c_str());
        break;
      }
      case trace::SnapshotEntryType::kSpecial: {
        // Specials become symlinks to the host's equivalents; /dev/random
        // optionally degrades to /dev/urandom per the emulation policy.
        std::string target = "/dev/null";
        if (e.special_kind == "urandom" ||
            (e.special_kind == "random" && policy_.dev_random_symlink)) {
          target = "/dev/urandom";
        } else if (e.special_kind == "random") {
          target = "/dev/random";
        }
        ::symlink(target.c_str(), host.c_str());
        break;
      }
    }
  }
}

int64_t PosixReplayEnv::Execute(const trace::TraceEvent& ev, const ExecContext& ctx) {
  Sys call = ev.call;
  EmulationRule rule = GetEmulationRule(call, policy_.target_os);
  if (rule.action == EmulationAction::kIgnore) {
    return 0;
  }
  if (rule.action == EmulationAction::kSubstitute) {
    call = rule.substitute;
  }
  if (rule.action == EmulationAction::kSequence && ev.call == Sys::kExchangeData) {
    std::string pa = Translate(ev.path);
    std::string pb = Translate(ev.path2);
    std::string tmp = StrFormat("%s.artc_xchg.%llu", pa.c_str(),
                                static_cast<unsigned long long>(
                                    exchange_tmp_counter_.fetch_add(1)));
    if (::link(pa.c_str(), tmp.c_str()) != 0) {
      return PortableErr();
    }
    if (::rename(pb.c_str(), pa.c_str()) != 0) {
      int64_t e = PortableErr();
      ::unlink(tmp.c_str());
      return e;
    }
    return RetOf(::rename(tmp.c_str(), pb.c_str()));
  }

  switch (call) {
    case Sys::kOpen:
    case Sys::kOpenAt:
    case Sys::kShmOpen: {
      uint32_t flags = ev.flags;
      if (policy_.relax_excl_on_anomaly && ev.ret >= 0) {
        // Compile-time anomaly handling strips O_EXCL only when needed; be
        // permissive here for robustness.
      }
      return RetOf(::open(Translate(ev.path).c_str(), HostOpenFlags(flags),
                          ev.mode != 0 ? ev.mode : 0644));
    }
    case Sys::kCreat:
      return RetOf(::open(Translate(ev.path).c_str(), O_CREAT | O_WRONLY | O_TRUNC,
                          ev.mode != 0 ? ev.mode : 0644));
    case Sys::kClose:
      return RetOf(::close(ctx.fd));
    case Sys::kDup:
    case Sys::kDup2:  // remapped through the slot table; plain dup suffices
      return RetOf(::dup(ctx.fd));
    case Sys::kRead:
    case Sys::kReadV:
      return RetOf(::read(ctx.fd, Buffer(ev.size), ev.size));
    case Sys::kPRead:
    case Sys::kPReadV:
      return RetOf(::pread(ctx.fd, Buffer(ev.size), ev.size,
                           static_cast<off_t>(ev.offset)));
    case Sys::kWrite:
    case Sys::kWriteV:
      return RetOf(::write(ctx.fd, Buffer(ev.size), ev.size));
    case Sys::kPWrite:
    case Sys::kPWriteV:
      return RetOf(::pwrite(ctx.fd, Buffer(ev.size), ev.size,
                            static_cast<off_t>(ev.offset)));
    case Sys::kLSeek:
      return RetOf(::lseek(ctx.fd, static_cast<off_t>(ev.offset), ev.whence));
    case Sys::kFsync:
    case Sys::kFcntlFullFsync:
      return RetOf(::fsync(ctx.fd));
    case Sys::kFdatasync:
    case Sys::kMsync:
    case Sys::kSyncFileRange:
#if defined(__linux__)
      return RetOf(::fdatasync(ctx.fd));
#else
      return RetOf(::fsync(ctx.fd));
#endif
    case Sys::kSync:
      ::sync();
      return 0;
    case Sys::kStat:
    case Sys::kFstatAt: {
      struct stat st;
      return RetOf(::stat(Translate(ev.path).c_str(), &st));
    }
    case Sys::kLstat: {
      struct stat st;
      return RetOf(::lstat(Translate(ev.path).c_str(), &st));
    }
    case Sys::kFstat: {
      struct stat st;
      return RetOf(::fstat(ctx.fd, &st));
    }
    case Sys::kAccess:
    case Sys::kFaccessAt:
      return RetOf(::access(Translate(ev.path).c_str(), F_OK));
    case Sys::kStatFs: {
      struct statvfs sv;
      return RetOf(::statvfs(Translate(ev.path).c_str(), &sv));
    }
    case Sys::kFstatFs: {
      struct statvfs sv;
      return RetOf(::fstatvfs(ctx.fd, &sv));
    }
    case Sys::kChmod:
      return RetOf(::chmod(Translate(ev.path).c_str(),
                           ev.mode != 0 ? ev.mode : 0644));
    case Sys::kFchmod:
      return RetOf(::fchmod(ctx.fd, ev.mode != 0 ? ev.mode : 0644));
    case Sys::kChown:
    case Sys::kLchown:
    case Sys::kFchown:
    case Sys::kUtimes:
    case Sys::kFutimes:
      return 0;  // ownership/times: no-ops in the sandbox
    case Sys::kTruncate:
      return RetOf(::truncate(Translate(ev.path).c_str(), static_cast<off_t>(ev.size)));
    case Sys::kFtruncate:
      return RetOf(::ftruncate(ctx.fd, static_cast<off_t>(ev.size)));
    case Sys::kMkdir:
    case Sys::kMkdirAt:
      return RetOf(::mkdir(Translate(ev.path).c_str(), ev.mode != 0 ? ev.mode : 0755));
    case Sys::kRmdir:
      return RetOf(::rmdir(Translate(ev.path).c_str()));
    case Sys::kUnlink:
    case Sys::kUnlinkAt:
    case Sys::kShmUnlink:
      return RetOf(::unlink(Translate(ev.path).c_str()));
    case Sys::kRename:
    case Sys::kRenameAt:
      return RetOf(::rename(Translate(ev.path).c_str(), Translate(ev.path2).c_str()));
    case Sys::kLink:
    case Sys::kLinkAt:
      return RetOf(::link(Translate(ev.path).c_str(), Translate(ev.path2).c_str()));
    case Sys::kSymlink:
    case Sys::kSymlinkAt: {
      std::string target = ev.path;
      if (!target.empty() && target[0] == '/') {
        target = Translate(target);
      }
      return RetOf(::symlink(target.c_str(), Translate(ev.path2).c_str()));
    }
    case Sys::kReadlink:
    case Sys::kReadlinkAt: {
      char buf[4096];
      return RetOf(::readlink(Translate(ev.path).c_str(), buf, sizeof(buf)));
    }
    case Sys::kGetDirEntries:
    case Sys::kGetDents: {
      // Portable emulation via readdir on a separately opened stream is
      // awkward with a raw fd; charge a directory stat instead.
      struct stat st;
      return RetOf(::fstat(ctx.fd, &st));
    }
#if ARTC_HAVE_XATTR
    case Sys::kGetXattr: {
      char buf[256];
      return RetOf(::getxattr(Translate(ev.path).c_str(),
                              HostXattrName(ev.name).c_str(), buf, sizeof(buf)));
    }
    case Sys::kLGetXattr: {
      char buf[256];
      return RetOf(::lgetxattr(Translate(ev.path).c_str(),
                               HostXattrName(ev.name).c_str(), buf, sizeof(buf)));
    }
    case Sys::kFGetXattr: {
      char buf[256];
      return RetOf(::fgetxattr(ctx.fd, HostXattrName(ev.name).c_str(), buf, sizeof(buf)));
    }
    case Sys::kSetXattr:
    case Sys::kLSetXattr:
      return RetOf(::setxattr(Translate(ev.path).c_str(), HostXattrName(ev.name).c_str(),
                              "artc", 4, 0));
    case Sys::kFSetXattr:
      return RetOf(::fsetxattr(ctx.fd, HostXattrName(ev.name).c_str(), "artc", 4, 0));
    case Sys::kListXattr:
    case Sys::kLListXattr: {
      char buf[1024];
      return RetOf(::listxattr(Translate(ev.path).c_str(), buf, sizeof(buf)));
    }
    case Sys::kFListXattr: {
      char buf[1024];
      return RetOf(::flistxattr(ctx.fd, buf, sizeof(buf)));
    }
    case Sys::kRemoveXattr:
    case Sys::kLRemoveXattr:
      return RetOf(::removexattr(Translate(ev.path).c_str(),
                                 HostXattrName(ev.name).c_str()));
    case Sys::kFRemoveXattr:
      return RetOf(::fremovexattr(ctx.fd, HostXattrName(ev.name).c_str()));
#endif
    case Sys::kFadvise:
    case Sys::kFcntlRdAdvise:
    case Sys::kReadahead:
#if defined(__linux__)
      return RetOf(::posix_fadvise(ctx.fd, static_cast<off_t>(std::max<int64_t>(0, ev.offset)),
                                   static_cast<off_t>(ev.size), POSIX_FADV_WILLNEED));
#else
      return 0;
#endif
    case Sys::kFallocate:
    case Sys::kFcntlPreallocate:
#if defined(__linux__)
      return RetOf(::posix_fallocate(ctx.fd, static_cast<off_t>(std::max<int64_t>(0, ev.offset)),
                                     static_cast<off_t>(std::max<uint64_t>(1, ev.size))));
#else
      return 0;
#endif
    case Sys::kAioRead:
    case Sys::kAioWrite:
      // Replayed synchronously on this backend; the handle is the byte
      // count result, consumed by aio_return.
      return call == Sys::kAioRead
                 ? RetOf(::pread(ctx.fd, Buffer(ev.size), ev.size,
                                 static_cast<off_t>(std::max<int64_t>(0, ev.offset))))
                 : RetOf(::pwrite(ctx.fd, Buffer(ev.size), ev.size,
                                  static_cast<off_t>(std::max<int64_t>(0, ev.offset))));
    case Sys::kAioError:
    case Sys::kAioSuspend:
    case Sys::kAioCancel:
      return 0;
    case Sys::kAioReturn:
      return ctx.aio >= 0 ? ctx.aio : -trace::kEINVAL;
    default:
      unsupported_.fetch_add(1, std::memory_order_relaxed);
      return 0;
  }
}

}  // namespace artc::core

// High-level ARTC facade: one-call compile + initialize + replay against a
// simulated storage target. This is the public API the benchmark harnesses
// and examples use; the individual pieces (Compile, Replay, SimReplayEnv)
// remain available for finer control.
#ifndef SRC_CORE_ARTC_H_
#define SRC_CORE_ARTC_H_

#include <string>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/emulation.h"
#include "src/core/replay_engine.h"
#include "src/core/report.h"
#include "src/sim/schedule.h"
#include "src/sim/simulation.h"
#include "src/storage/storage_stack.h"
#include "src/vfs/vfs.h"

namespace artc::core {

// Describes a simulated replay target: storage hardware, file system, OS
// personality, and replay behaviour.
struct SimTarget {
  storage::StorageConfig storage = storage::MakeNamedConfig("hdd");
  std::string fs_profile = "ext4";
  std::string platform = "linux";
  EmulationPolicy emulation;
  ReplayOptions replay;     // pacing
  uint64_t seed = 1;        // simulated-scheduler seed
  // Context-switch backend for the simulation. The build default (fibers
  // unless -DARTC_SIM_BACKEND=threads) is right for everything except
  // differential backend testing.
  sim::SimBackend sim_backend = sim::DefaultSimBackend();
  // Scheduler choice-point policy for the simulation. kDefault keeps the
  // built-in seeded-random scheduler and is bit-identical to not setting a
  // policy at all; kRandom / kPct explore alternative legal interleavings
  // of the same replay (used by the src/check/ harness).
  sim::ScheduleSpec schedule;
  bool drop_caches_after_init = true;
  bool delta_init = false;
  // Host worker threads for sim::SimBackend::kParallel suite replays
  // (0 = util::DefaultJobs(), i.e. ARTC_JOBS or the core count). Ignored by
  // single-shard replays and by the fibers/threads backends.
  size_t jobs = 0;
  // Turns on the process-wide observability switch (obs::Enable) for this
  // replay, so instrumented spans/counters are collected even without
  // ARTC_TRACE_OUT in the environment. The caller still decides where the
  // data goes (obs::FlushOutputs or direct registry/tracer reads).
  bool obs = false;
};

struct SimReplayResult {
  ReplayReport report;
  EdgeStats edge_stats;
  uint64_t model_warnings = 0;
  // Simulator diagnostics for the whole run (init + replay): total simulated
  // context switches and the final virtual clock. Identical across backends
  // for the same seed; the throughput bench asserts exactly that.
  uint64_t sim_switches = 0;
  TimeNs sim_end_time = 0;
  // Storage-stack counters for this run only (the obs registry accumulates
  // process-wide): cache hits/misses, media traffic, RAID stripe balance.
  storage::StorageCounters storage;
};

// Compiles the trace under `options` and replays it on the simulated target.
SimReplayResult ReplayOnSimTarget(const trace::Trace& t,
                                  const trace::FsSnapshot& snapshot,
                                  const CompileOptions& options, const SimTarget& target);

// Convenience: replays a pre-compiled benchmark (used when comparing several
// targets without recompiling). `bench` is only read, so many host threads
// may replay the same compiled artifact concurrently (each call builds its
// own simulation/storage/vfs world) — the sharing contract behind
// core::CompiledBenchmarkPtr that the sweep engine and artcd rely on.
//
// When `final_state` is non-null, the simulated file system is captured into
// it right after the replay finishes (still inside the simulation, at zero
// virtual cost), so callers can digest the end state without re-running.
// Virtual results are bit-identical with capture on or off.
SimReplayResult ReplayCompiledOnSimTarget(const CompiledBenchmark& bench,
                                          const SimTarget& target,
                                          trace::FsSnapshot* final_state);
SimReplayResult ReplayCompiledOnSimTarget(const CompiledBenchmark& bench,
                                          const SimTarget& target);

// Replays several compiled benchmarks *concurrently* on one simulated
// target: their snapshots are overlaid into a single tree and each
// benchmark's replay threads run side by side — the paper's multi-trace
// mode ("a workload similar to a user browsing photos in iPhoto while
// listening to music in iTunes", Sec. 4.3.2). Returns one report per
// benchmark plus the combined wall time.
struct MultiReplayResult {
  std::vector<ReplayReport> reports;  // parallel to the input benchmarks
  TimeNs wall_time = 0;
};
MultiReplayResult ReplayConcurrentlyOnSimTarget(
    const std::vector<const CompiledBenchmark*>& benches, const SimTarget& target);

// Replays several compiled benchmarks as *independent* runs inside one
// simulation, one shard per benchmark: each shard gets its own storage
// stack, VFS, and replay environment, seeded with
// sim::Simulation::ShardSeed(target.seed, shard). Shard k's virtual
// timeline (timestamps, switch counts, storage counters) is bit-identical
// to a standalone ReplayCompiledOnSimTarget with that derived seed — and,
// under SimBackend::kParallel, independent of how many host workers
// (`target.jobs`) execute the shards. This is the multi-core replay path:
// throughput scales with min(jobs, benches.size()).
struct SuiteReplayResult {
  std::vector<SimReplayResult> runs;  // parallel to the input benchmarks
  TimeNs end_time = 0;                // max shard end time
  size_t shards = 0;
  size_t workers = 0;                 // host workers actually used
  // Window-machinery diagnostics: synchronization windows executed and
  // cross-shard messages delivered (0 for an independent suite — its
  // lookahead is infinite, so the whole run is one window).
  uint64_t windows = 0;
  uint64_t messages = 0;
};
SuiteReplayResult ReplaySuiteOnSimTarget(
    const std::vector<const CompiledBenchmark*>& benches, const SimTarget& target);

}  // namespace artc::core

#endif  // SRC_CORE_ARTC_H_

// (De)serialization of compiled benchmarks. The original ARTC emitted
// generated C compiled into a shared library, "a simple way to serialize
// the replay information ... using pre-built data structures saves the
// runtime overhead of parsing a more generic input format" (Sec. 4.3.1).
// We serve the same role with a compact binary file: compile a trace once
// with the artc_compile tool, ship the .artcb file, replay it anywhere.
#ifndef SRC_CORE_SERIALIZE_H_
#define SRC_CORE_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "src/core/compiled.h"

namespace artc::core {

// Binary format, versioned; aborts on malformed input (benchmarks are
// build artifacts, not untrusted data).
void WriteBenchmark(const CompiledBenchmark& bench, std::ostream& out);
CompiledBenchmark ReadBenchmark(std::istream& in);

void WriteBenchmarkFile(const CompiledBenchmark& bench, const std::string& path);
CompiledBenchmark ReadBenchmarkFile(const std::string& path);

}  // namespace artc::core

#endif  // SRC_CORE_SERIALIZE_H_

// Cross-platform emulation (paper Sec. 4.3.4): when a trace contains calls
// that the target platform does not provide, the replayer issues the most
// similar call (or sequence of calls) available. The 19 OS-X-specific calls
// fall into the paper's four groups: metadata-access APIs, file-system
// hints, obscure undocumented calls, and the exchangedata atomicity
// primitive, plus the fsync-semantics difference.
#ifndef SRC_CORE_EMULATION_H_
#define SRC_CORE_EMULATION_H_

#include <string>

#include "src/trace/syscalls.h"

namespace artc::core {

// How fsync recorded on the source should behave on the target (paper:
// "When replaying traces collected from Linux on a Mac, a replay option
// determines which semantics are used to emulate fsync").
enum class FsyncEmulation : uint8_t {
  kTargetDefault,  // use whatever the target's fsync does
  kDurable,        // force durability (F_FULLFSYNC-style)
  kFlushOnly,      // device flush only
};

struct EmulationPolicy {
  std::string target_os = "linux";  // "linux", "osx", "freebsd", "illumos"
  FsyncEmulation fsync = FsyncEmulation::kTargetDefault;
  // Create /dev/random as a symlink to /dev/urandom during initialization
  // (avoids blocking reads when replaying OS X traces on Linux).
  bool dev_random_symlink = true;
  // Strip O_EXCL from creates the trace model flagged as inconsistent
  // (paper Sec. 5.1 "Missing trace details"). Applied at compile time.
  bool relax_excl_on_anomaly = true;
};

// Emulation classification for one call on a target OS.
enum class EmulationAction : uint8_t {
  kNative,      // the target supports the call directly
  kSubstitute,  // replay a single similar call instead
  kSequence,    // replay a multi-call sequence (exchangedata)
  kIgnore,      // no analogous API (e.g., some hints on FreeBSD): no-op
};

struct EmulationRule {
  EmulationAction action = EmulationAction::kNative;
  trace::Sys substitute = trace::Sys::kCount;  // for kSubstitute
};

// Returns how `call` should be replayed on `target_os`.
EmulationRule GetEmulationRule(trace::Sys call, const std::string& target_os);

}  // namespace artc::core

#endif  // SRC_CORE_EMULATION_H_

#include "src/core/sim_env.h"

#include "src/util/check.h"
#include "src/util/strings.h"

namespace artc::core {

using trace::Sys;
using vfs::VfsResult;

namespace {
// Power of two so the per-wait / per-notify stripe lookup is a mask, not a
// division — this runs once per dependency edge and twice per action.
constexpr size_t kStripeCount = 512;
static_assert((kStripeCount & (kStripeCount - 1)) == 0);
}  // namespace

struct SimReplayEnv::AioOp {
  sim::SimThreadId thread = sim::kInvalidThread;
  int64_t result = 0;
  bool finished = false;
};

SimReplayEnv::SimReplayEnv(sim::Simulation* simulation, vfs::Vfs* fs,
                           EmulationPolicy policy)
    : sim_(simulation), fs_(fs), policy_(std::move(policy)) {
  stripes_.reserve(kStripeCount);
  for (size_t i = 0; i < kStripeCount; ++i) {
    stripes_.push_back(std::make_unique<sim::SimCondVar>(sim_));
  }
  stripe_mask_ = static_cast<uint32_t>(kStripeCount - 1);
}

SimReplayEnv::~SimReplayEnv() = default;

void SimReplayEnv::RunThreads(size_t n, std::function<void(size_t)> body) {
  std::vector<sim::SimThreadId> tids;
  tids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tids.push_back(sim_->Spawn(StrFormat("replay-%zu", i), [body, i] { body(i); }));
  }
  for (sim::SimThreadId tid : tids) {
    sim_->Join(tid);
  }
}

void SimReplayEnv::Initialize(const trace::FsSnapshot& snapshot, bool delta) {
  if (!policy_.dev_random_symlink || policy_.target_os == "osx") {
    fs_->RestoreSnapshot(snapshot, delta);
    return;
  }
  // Replace /dev/random with a symlink to /dev/urandom so replays on Linux
  // are not throttled by the entropy pool (paper Sec. 5.1).
  trace::FsSnapshot patched = snapshot;
  bool saw_random = false;
  for (trace::SnapshotEntry& e : patched.entries) {
    if (e.path == "/dev/random" && e.type == trace::SnapshotEntryType::kSpecial) {
      e.type = trace::SnapshotEntryType::kSymlink;
      e.symlink_target = "/dev/urandom";
      saw_random = true;
    }
  }
  if (saw_random && patched.Find("/dev/urandom") == nullptr) {
    patched.AddSpecial("/dev/urandom", "urandom");
    patched.Canonicalize();
  }
  fs_->RestoreSnapshot(patched, delta);
}

int64_t SimReplayEnv::AioSubmit(const trace::TraceEvent& ev, const ExecContext& ctx,
                                bool is_write) {
  int64_t handle = next_aio_handle_++;
  auto op = std::make_unique<AioOp>();
  AioOp* raw = op.get();
  int32_t fd = ctx.fd;
  uint64_t size = ev.size;
  int64_t offset = ev.offset >= 0 ? ev.offset : 0;
  raw->thread = sim_->Spawn("aio", [this, raw, fd, size, offset, is_write] {
    VfsResult r = is_write ? fs_->Pwrite(fd, size, offset) : fs_->Pread(fd, size, offset);
    raw->result = r.TraceRet();
    raw->finished = true;
  });
  aio_ops_[handle] = std::move(op);
  sim_->Sleep(Us(2));  // submission cost
  return handle;
}

int64_t SimReplayEnv::AioWait(int64_t handle, bool consume) {
  auto it = aio_ops_.find(handle);
  if (it == aio_ops_.end()) {
    return -trace::kEINVAL;
  }
  AioOp* op = it->second.get();
  sim_->Join(op->thread);
  int64_t result = op->result;
  if (consume) {
    aio_ops_.erase(it);
  }
  return result;
}

int64_t SimReplayEnv::Execute(const trace::TraceEvent& ev, const ExecContext& ctx) {
  Sys call = ev.call;
  EmulationRule rule = GetEmulationRule(call, policy_.target_os);
  if (rule.action == EmulationAction::kIgnore) {
    sim_->Sleep(Us(1));
    return 0;
  }
  if (rule.action == EmulationAction::kSubstitute) {
    call = rule.substitute;
  }
  if (rule.action == EmulationAction::kSequence && call == Sys::kExchangeData) {
    // link(a, tmp); rename(b, a); rename(tmp, b) — the paper's emulation of
    // the atomic swap on platforms without exchangedata.
    std::string tmp = StrFormat("%s.artc_xchg.%llu", ev.path.c_str(),
                                static_cast<unsigned long long>(exchange_tmp_counter_++));
    VfsResult l = fs_->Link(ev.path, tmp);
    if (!l.ok()) {
      return l.TraceRet();
    }
    VfsResult r1 = fs_->Rename(ev.path2, ev.path);
    if (!r1.ok()) {
      fs_->Unlink(tmp);
      return r1.TraceRet();
    }
    VfsResult r2 = fs_->Rename(tmp, ev.path2);
    return r2.TraceRet();
  }

  uint32_t open_flags = ev.flags;
  switch (call) {
    case Sys::kOpen:
    case Sys::kOpenAt:
    case Sys::kShmOpen:
      if (policy_.relax_excl_on_anomaly && ev.ret >= 0 && (ev.flags & trace::kOpenExcl)) {
        // The compiler flagged successful O_EXCL creates over bound paths as
        // trace anomalies; replay them without O_EXCL so they succeed.
        open_flags &= ~trace::kOpenExcl;
      }
      return fs_->Open(ev.path, open_flags, ev.mode != 0 ? ev.mode : 0644).TraceRet();
    case Sys::kCreat:
      return fs_->Open(ev.path, trace::kOpenWrite | trace::kOpenCreate | trace::kOpenTrunc,
                       ev.mode != 0 ? ev.mode : 0644)
          .TraceRet();
    case Sys::kClose:
      return fs_->Close(ctx.fd).TraceRet();
    case Sys::kDup:
      return fs_->Dup(ctx.fd).TraceRet();
    case Sys::kDup2:
      // Replayed as dup: the engine's slot table does the number remapping.
      return fs_->Dup(ctx.fd).TraceRet();
    case Sys::kRead:
    case Sys::kReadV:
      return fs_->Read(ctx.fd, ev.size).TraceRet();
    case Sys::kPRead:
    case Sys::kPReadV:
      return fs_->Pread(ctx.fd, ev.size, ev.offset).TraceRet();
    case Sys::kWrite:
    case Sys::kWriteV:
      return fs_->Write(ctx.fd, ev.size).TraceRet();
    case Sys::kPWrite:
    case Sys::kPWriteV:
      return fs_->Pwrite(ctx.fd, ev.size, ev.offset).TraceRet();
    case Sys::kLSeek:
      return fs_->Lseek(ctx.fd, ev.offset, ev.whence).TraceRet();
    case Sys::kSendFile:
    case Sys::kCopyFileRange:
      return fs_->Read(ctx.fd, ev.size).TraceRet();
    case Sys::kMmap:
      // File-backed mmap: model as a read of the mapped range.
      if (ctx.fd >= 0 && ev.size > 0) {
        fs_->Pread(ctx.fd, ev.size, ev.offset >= 0 ? ev.offset : 0);
      }
      return 0;
    case Sys::kMunmap:
    case Sys::kMadvise:
    case Sys::kUmask:
    case Sys::kChdir:
    case Sys::kFchdir:
    case Sys::kGetCwd:
    case Sys::kFlock:
    case Sys::kFcntl:
    case Sys::kIoctl:
    case Sys::kMknod:
    case Sys::kLioListio:
      sim_->Sleep(Us(1));
      return 0;
    case Sys::kMsync:
    case Sys::kSyncFileRange:
    case Sys::kFdatasync:
      return fs_->Fdatasync(ctx.fd).TraceRet();
    case Sys::kFsync: {
      switch (policy_.fsync) {
        case FsyncEmulation::kDurable:
          return fs_->FullFsync(ctx.fd).TraceRet();
        case FsyncEmulation::kFlushOnly:
          return fs_->Fdatasync(ctx.fd).TraceRet();
        case FsyncEmulation::kTargetDefault:
          return fs_->Fsync(ctx.fd).TraceRet();
      }
      return fs_->Fsync(ctx.fd).TraceRet();
    }
    case Sys::kFcntlFullFsync:
      return fs_->FullFsync(ctx.fd).TraceRet();
    case Sys::kSync:
      return fs_->SyncAll().TraceRet();
    case Sys::kStat:
    case Sys::kFstatAt: {
      VfsResult r = fs_->Stat(ev.path);
      return r.ok() ? 0 : r.TraceRet();
    }
    case Sys::kLstat: {
      VfsResult r = fs_->Lstat(ev.path);
      return r.ok() ? 0 : r.TraceRet();
    }
    case Sys::kFstat: {
      VfsResult r = fs_->Fstat(ctx.fd);
      return r.ok() ? 0 : r.TraceRet();
    }
    case Sys::kAccess:
    case Sys::kFaccessAt:
      return fs_->Access(ev.path).TraceRet();
    case Sys::kStatFs:
      return fs_->StatFs(ev.path).TraceRet();
    case Sys::kFstatFs:
      return fs_->Fstat(ctx.fd).ok() ? 0 : -trace::kEBADF;
    case Sys::kChmod:
      return fs_->Chmod(ev.path, ev.mode).TraceRet();
    case Sys::kFchmod:
      return fs_->Fstat(ctx.fd).ok() ? 0 : -trace::kEBADF;
    case Sys::kChown:
    case Sys::kLchown:
      return fs_->Chmod(ev.path, 0).TraceRet();
    case Sys::kFchown:
    case Sys::kFutimes:
      return fs_->Fstat(ctx.fd).ok() ? 0 : -trace::kEBADF;
    case Sys::kUtimes:
      return fs_->Utimes(ev.path).TraceRet();
    case Sys::kTruncate:
      return fs_->Truncate(ev.path, ev.size).TraceRet();
    case Sys::kFtruncate:
      return fs_->Ftruncate(ctx.fd, ev.size).TraceRet();
    case Sys::kMkdir:
    case Sys::kMkdirAt:
      return fs_->Mkdir(ev.path, ev.mode != 0 ? ev.mode : 0755).TraceRet();
    case Sys::kRmdir:
      return fs_->Rmdir(ev.path).TraceRet();
    case Sys::kUnlink:
    case Sys::kUnlinkAt:
    case Sys::kShmUnlink:
      return fs_->Unlink(ev.path).TraceRet();
    case Sys::kRename:
    case Sys::kRenameAt:
      return fs_->Rename(ev.path, ev.path2).TraceRet();
    case Sys::kLink:
    case Sys::kLinkAt:
      return fs_->Link(ev.path, ev.path2).TraceRet();
    case Sys::kSymlink:
    case Sys::kSymlinkAt:
      return fs_->Symlink(ev.path, ev.path2).TraceRet();
    case Sys::kReadlink:
    case Sys::kReadlinkAt:
      return fs_->Readlink(ev.path).TraceRet();
    case Sys::kGetDirEntries:
    case Sys::kGetDents: {
      VfsResult r = fs_->GetDirEntries(ctx.fd, ev.size);
      return r.TraceRet();
    }
    case Sys::kGetXattr:
      return fs_->GetXattr(ev.path, ev.name).TraceRet();
    case Sys::kLGetXattr:
      return fs_->GetXattr(ev.path, ev.name).TraceRet();
    case Sys::kFGetXattr:
      return fs_->FGetXattr(ctx.fd, ev.name).TraceRet();
    case Sys::kSetXattr:
    case Sys::kLSetXattr:
      return fs_->SetXattr(ev.path, ev.name, ev.size).TraceRet();
    case Sys::kFSetXattr:
      return fs_->FSetXattr(ctx.fd, ev.name, ev.size).TraceRet();
    case Sys::kListXattr:
    case Sys::kLListXattr:
      return fs_->ListXattr(ev.path).TraceRet();
    case Sys::kFListXattr:
      return fs_->Fstat(ctx.fd).ok() ? 0 : -trace::kEBADF;
    case Sys::kRemoveXattr:
    case Sys::kLRemoveXattr:
      return fs_->RemoveXattr(ev.path, ev.name).TraceRet();
    case Sys::kFRemoveXattr:
      return fs_->Fstat(ctx.fd).ok() ? 0 : -trace::kEBADF;
    case Sys::kFadvise:
    case Sys::kFcntlRdAdvise:
    case Sys::kReadahead:
      return fs_->Fadvise(ctx.fd, ev.offset >= 0 ? ev.offset : 0, ev.size).TraceRet();
    case Sys::kFallocate:
    case Sys::kFcntlPreallocate:
      return fs_->Fallocate(ctx.fd, ev.offset >= 0 ? ev.offset : 0, ev.size).TraceRet();
    case Sys::kFcntlNoCache:
      sim_->Sleep(Us(1));
      return 0;
    case Sys::kExchangeData:
      return fs_->ExchangeData(ev.path, ev.path2).TraceRet();
    case Sys::kAioRead:
      return AioSubmit(ev, ctx, /*is_write=*/false);
    case Sys::kAioWrite:
      return AioSubmit(ev, ctx, /*is_write=*/true);
    case Sys::kAioError: {
      auto it = aio_ops_.find(ctx.aio);
      sim_->Sleep(Us(1));
      if (it == aio_ops_.end()) {
        return -trace::kEINVAL;
      }
      return 0;  // 0 == completed or in progress; callers follow with return
    }
    case Sys::kAioSuspend:
      return AioWait(ctx.aio, /*consume=*/false) >= 0 ? 0 : -trace::kEINVAL;
    case Sys::kAioCancel:
      sim_->Sleep(Us(1));
      return 0;
    case Sys::kAioReturn:
      return AioWait(ctx.aio, /*consume=*/true);
    default:
      sim_->Sleep(Us(1));
      return 0;
  }
}

}  // namespace artc::core

// The ARTC compiler: trace + initial snapshot -> compiled benchmark.
//
// A single scan over the annotated trace maintains one cursor per resource
// (creating action, last action, uses since create) and emits dependency
// edges according to the enabled ordering rules — action series are never
// materialised, exactly as Sec. 4.3.3 describes.
#ifndef SRC_CORE_COMPILER_H_
#define SRC_CORE_COMPILER_H_

#include "src/core/compiled.h"
#include "src/trace/event.h"
#include "src/trace/snapshot.h"

namespace artc::core {

struct CompileOptions {
  ReplayMethod method = ReplayMethod::kArtc;
  ReplayModes modes;  // only consulted for kArtc
};

CompiledBenchmark Compile(const trace::Trace& t, const trace::FsSnapshot& snapshot,
                          const CompileOptions& options = {});

}  // namespace artc::core

#endif  // SRC_CORE_COMPILER_H_

// The ARTC compiler: trace + initial snapshot -> compiled benchmark.
//
// A single scan over the annotated trace maintains one cursor per resource
// (creating action, last action, uses since create) and emits dependency
// edges according to the enabled ordering rules — action series are never
// materialised, exactly as Sec. 4.3.3 describes.
#ifndef SRC_CORE_COMPILER_H_
#define SRC_CORE_COMPILER_H_

#include <memory>

#include "src/core/compiled.h"
#include "src/fsmodel/resource_model.h"
#include "src/trace/event.h"
#include "src/trace/snapshot.h"

namespace artc::core {

struct CompileOptions {
  ReplayMethod method = ReplayMethod::kArtc;
  ReplayModes modes;  // only consulted for kArtc
  // Drop completion edges that are transitively implied by the dependent
  // action's same-thread predecessor (kArtc only). Such edges can never be
  // the one an action blocks on, so replay behaviour — including simulated
  // timestamps under a fixed seed — is unchanged; the dep arena just gets
  // smaller. EdgeStats::pruned_by_rule reports what was dropped;
  // count_by_rule still reflects the full rule output.
  bool prune_redundant_deps = true;
};

CompiledBenchmark Compile(const trace::Trace& t, const trace::FsSnapshot& snapshot,
                          const CompileOptions& options = {});

// Compile against a precomputed annotation. `annotated` must have been
// produced from this exact trace + snapshot. A pipeline that already ran
// AnnotateTrace — for validation, statistics, or to compile the same trace
// under several methods — passes it here instead of paying for a second
// annotation pass (roughly a third of compile time on large traces).
CompiledBenchmark Compile(const trace::Trace& t, const trace::FsSnapshot& snapshot,
                          const fsmodel::AnnotatedTrace& annotated,
                          const CompileOptions& options);

// Consuming overloads: when the caller is done with the trace (the normal
// parse -> compile pipeline), the compiler steals the event vector instead
// of copying ~200 bytes per event into the benchmark. The trace is left
// moved-from.
CompiledBenchmark Compile(trace::Trace&& t, const trace::FsSnapshot& snapshot,
                          const CompileOptions& options = {});
CompiledBenchmark Compile(trace::Trace&& t, const trace::FsSnapshot& snapshot,
                          const fsmodel::AnnotatedTrace& annotated,
                          const CompileOptions& options);

// A compiled benchmark shared across concurrent consumers. CompiledBenchmark
// is immutable once compiled and Replay() only ever reads it, so one
// compiled artifact can back any number of simultaneous replays (sweep
// cells, artcd sessions) without copies — the shared_ptr's control block is
// the only synchronization. Everything reachable through the pointer is
// const; a consumer that needs a variant (different method, ablated rules)
// compiles its own.
using CompiledBenchmarkPtr = std::shared_ptr<const CompiledBenchmark>;

// Compile once, share everywhere. The overloads mirror Compile(); the
// annotation-reuse form is how a sweep compiles one trace under several
// replay methods while paying for a single annotation pass.
CompiledBenchmarkPtr CompileShared(const trace::Trace& t,
                                   const trace::FsSnapshot& snapshot,
                                   const CompileOptions& options = {});
CompiledBenchmarkPtr CompileShared(const trace::Trace& t,
                                   const trace::FsSnapshot& snapshot,
                                   const fsmodel::AnnotatedTrace& annotated,
                                   const CompileOptions& options);
// Consuming form: steals the event vector like Compile(Trace&&). Used for
// the final compile of a trace that backs several shared artifacts.
CompiledBenchmarkPtr CompileShared(trace::Trace&& t,
                                   const trace::FsSnapshot& snapshot,
                                   const fsmodel::AnnotatedTrace& annotated,
                                   const CompileOptions& options);

}  // namespace artc::core

#endif  // SRC_CORE_COMPILER_H_

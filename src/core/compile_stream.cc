#include "src/core/compile_stream.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/core/dep_builder.h"
#include "src/obs/obs.h"
#include "src/util/check.h"

namespace artc::core {
namespace {

using internal::DepBuilder;
using internal::DepPruner;
using internal::EventMeta;

// Canonical FNV-1a over the compiled stream. Both pipelines fold the exact
// same byte sequence, so the digest compares them with one integer.
struct Fnv1a {
  uint64_t h = 1469598103934665603ull;

  void Bytes(const void* p, size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof v); }
  void I64(int64_t v) { Bytes(&v, sizeof v); }
  void U32(uint32_t v) { Bytes(&v, sizeof v); }
  void I32(int32_t v) { Bytes(&v, sizeof v); }
  void U8(uint8_t v) { Bytes(&v, sizeof v); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
};

void DigestEvent(Fnv1a& f, const trace::TraceEvent& ev) {
  f.U64(ev.index);
  f.U32(ev.tid);
  f.U32(static_cast<uint32_t>(ev.call));
  f.I64(ev.enter);
  f.I64(ev.ret_time);
  f.I64(ev.ret);
  f.Str(ev.path);
  f.Str(ev.path2);
  f.I32(ev.fd);
  f.I32(ev.fd2);
  f.I64(ev.offset);
  f.U64(ev.size);
  f.U32(ev.flags);
  f.U32(ev.mode);
  f.I32(ev.whence);
  f.Str(ev.name);
  f.U64(ev.aio_id);
}

void DigestAction(Fnv1a& f, const CompiledAction& a, const Dep* deps,
                  size_t dep_count) {
  f.U32(a.thread_index);
  f.I32(a.fd_use_slot);
  f.I32(a.fd_def_slot);
  f.I32(a.aio_use_slot);
  f.I32(a.aio_def_slot);
  f.I64(a.predelay);
  f.U64(dep_count);
  for (size_t j = 0; j < dep_count; ++j) {
    f.U32(deps[j].event);
    f.U8(static_cast<uint8_t>(deps[j].kind));
    f.U8(static_cast<uint8_t>(deps[j].rule));
    f.U32(deps[j].res);
  }
}

void DigestTrailer(Fnv1a& f, uint64_t n, const std::vector<uint32_t>& thread_ids,
                   uint32_t fd_slot_count, uint32_t aio_slot_count,
                   const EdgeStats& stats, uint64_t model_warnings,
                   const std::vector<std::string>& dep_resource_names) {
  f.U64(n);
  f.U64(thread_ids.size());
  for (uint32_t tid : thread_ids) {
    f.U32(tid);
  }
  f.U32(fd_slot_count);
  f.U32(aio_slot_count);
  for (uint64_t c : stats.count_by_rule) {
    f.U64(c);
  }
  for (double d : stats.total_length_ns) {
    f.F64(d);
  }
  for (uint64_t c : stats.pruned_by_rule) {
    f.U64(c);
  }
  f.U64(model_warnings);
  f.U64(dep_resource_names.size());
  for (const std::string& s : dep_resource_names) {
    f.Str(s);
  }
}

}  // namespace

uint64_t DigestBenchmark(const CompiledBenchmark& bench) {
  Fnv1a f;
  for (uint32_t i = 0; i < bench.actions.size(); ++i) {
    DigestEvent(f, bench.events[i]);
    const DepSpan deps = bench.DepsFor(i);
    DigestAction(f, bench.actions[i], deps.first, deps.size());
  }
  DigestTrailer(f, bench.actions.size(), bench.thread_ids, bench.fd_slot_count,
                bench.aio_slot_count, bench.edge_stats, bench.model_warnings,
                bench.dep_resource_names);
  return f.h;
}

struct CompileStream::Impl {
  explicit Impl(const trace::FsSnapshot& snapshot,
                const CompileStreamOptions& options)
      : opts(options), snapshot_copy(snapshot), annotator(snapshot, [] {
          fsmodel::AnnotateOptions a;
          a.materialize_labels = false;
          return a;
        }()) {
    ARTC_CHECK_MSG(options.compile.method == ReplayMethod::kArtc,
                   "CompileStream supports the ARTC method only");
    builder = std::make_unique<DepBuilder>(annotator.resources(), nullptr,
                                           meta, &dep_resource_names,
                                           &edge_stats);
    if (options.compile.prune_redundant_deps) {
      pruner = std::make_unique<DepPruner>(meta, &edge_stats);
    }
    if (options.materialize) {
      bench.dep_offsets.push_back(0);
    }
  }

  CompileStreamOptions opts;
  trace::FsSnapshot snapshot_copy;
  fsmodel::Annotator annotator;

  EventMeta meta;
  std::unique_ptr<DepBuilder> builder;
  std::unique_ptr<DepPruner> pruner;
  EdgeStats edge_stats;
  std::vector<std::string> dep_resource_names;

  // Dense replay threads (same flat/overflow scheme as the batch compiler).
  static constexpr uint32_t kFlatTidLimit = 1 << 16;
  std::vector<uint32_t> tid_flat;
  std::unordered_map<uint32_t, uint32_t> tid_overflow;
  std::vector<uint32_t> thread_ids;
  std::vector<TimeNs> last_ret_by_thread;
  TimeNs trace_start = 0;

  // fd/aio remap slots, assigned lazily in resource-id order — identical
  // numbering to the batch compiler's upfront id-order scan.
  std::vector<int32_t> fd_slots;
  std::vector<int32_t> aio_slots;
  uint32_t fd_slot_count = 0;
  uint32_t aio_slot_count = 0;
  size_t slots_assigned = 0;

  std::vector<fsmodel::Touch> touches;  // per-event scratch
  uint64_t n = 0;
  Fnv1a digest;
  CompiledBenchmark bench;  // materialize mode only
  bool finished = false;

  void Push(const trace::TraceEvent& ev) {
    ARTC_CHECK_MSG(!finished, "Push after Finish");
    ARTC_CHECK_MSG(ev.index == n, "events must arrive dense and in order");
    const uint32_t i = static_cast<uint32_t>(n);
    if (n == 0) {
      trace_start = ev.enter;
    }
    ++n;

    // Dense replay thread.
    uint32_t ti;
    uint32_t* slot = nullptr;
    if (ev.tid < kFlatTidLimit) {
      if (tid_flat.size() <= ev.tid) {
        tid_flat.resize(ev.tid + 1, 0);
      }
      slot = &tid_flat[ev.tid];
    } else {
      slot = &tid_overflow[ev.tid];
    }
    if (*slot == 0) {
      ti = static_cast<uint32_t>(thread_ids.size());
      *slot = ti + 1;
      thread_ids.push_back(ev.tid);
    } else {
      ti = *slot - 1;
    }
    meta.Push(ti, ev);

    CompiledAction a;
    a.thread_index = ti;
    if (last_ret_by_thread.size() <= ti) {
      last_ret_by_thread.resize(ti + 1, trace_start);
    }
    a.predelay = std::max<TimeNs>(0, ev.enter - last_ret_by_thread[ti]);
    last_ret_by_thread[ti] = ev.ret_time;

    // Annotate, then extend the slot tables over any resources this event
    // created (ids are dense and assigned in order, so lazy assignment in
    // [slots_assigned, size) reproduces the batch compiler's numbering).
    touches.clear();
    annotator.AnnotateEvent(ev, &touches);
    const std::vector<fsmodel::ResourceInfo>& resources =
        annotator.resources();
    if (resources.size() > slots_assigned) {
      fd_slots.resize(resources.size(), -1);
      aio_slots.resize(resources.size(), -1);
      for (size_t r = slots_assigned; r < resources.size(); ++r) {
        if (resources[r].kind == fsmodel::ResourceKind::kFd) {
          fd_slots[r] = static_cast<int32_t>(fd_slot_count++);
        } else if (resources[r].kind == fsmodel::ResourceKind::kAiocb) {
          aio_slots[r] = static_cast<int32_t>(aio_slot_count++);
        }
      }
      slots_assigned = resources.size();
    }

    // Slot wiring fused with dep emission, exactly as in CompileImpl.
    builder->BeginEvent(i, touches.size() + 2);
    for (const fsmodel::Touch& touch : touches) {
      const fsmodel::ResourceInfo& res = resources[touch.resource];
      if (res.kind == fsmodel::ResourceKind::kFd) {
        if (touch.access == fsmodel::Access::kCreate) {
          a.fd_def_slot = fd_slots[touch.resource];
        } else if (a.fd_use_slot < 0) {
          a.fd_use_slot = fd_slots[touch.resource];
        }
      } else if (res.kind == fsmodel::ResourceKind::kAiocb) {
        if (touch.access == fsmodel::Access::kCreate) {
          a.aio_def_slot = aio_slots[touch.resource];
        } else if (a.aio_use_slot < 0) {
          a.aio_use_slot = aio_slots[touch.resource];
        }
      }
      builder->ArtcTouch(touch, opts.compile.modes);
    }
    std::vector<Dep>& deps = builder->deps();

    // Predelay refinement against the *unpruned* deps (pruning must not
    // change pacing), using the sidecar's return times.
    if (!deps.empty()) {
      TimeNs base = ev.enter - a.predelay;
      for (const Dep& d : deps) {
        base = std::max(base, meta.ret_time[d.event]);
      }
      a.predelay = std::max<TimeNs>(0, ev.enter - base);
    }

    // Inline pruning (must run for every event, in order).
    if (pruner) {
      const uint32_t kept =
          pruner->PruneEvent(i, ti, deps.data(),
                             static_cast<uint32_t>(deps.size()));
      deps.resize(kept);
    }

    DigestEvent(digest, ev);
    DigestAction(digest, a, deps.data(), deps.size());

    if (opts.materialize) {
      bench.events.push_back(ev);
      bench.actions.push_back(a);
      if (bench.thread_actions.size() <= ti) {
        bench.thread_actions.resize(ti + 1);
      }
      bench.thread_actions[ti].push_back(i);
      bench.dep_arena.insert(bench.dep_arena.end(), deps.begin(), deps.end());
      bench.dep_offsets.push_back(
          static_cast<uint32_t>(bench.dep_arena.size()));
    }
  }

  uint64_t Finish(CompiledBenchmark* out) {
    ARTC_CHECK_MSG(!finished, "Finish called twice");
    finished = true;
    const uint64_t warnings = annotator.warnings();
    DigestTrailer(digest, n, thread_ids, fd_slot_count, aio_slot_count,
                  edge_stats, warnings, dep_resource_names);
    if (opts.materialize && out != nullptr) {
      bench.method = opts.compile.method;
      bench.modes = opts.compile.modes;
      bench.snapshot = snapshot_copy;
      bench.thread_ids = thread_ids;
      bench.fd_slot_count = fd_slot_count;
      bench.aio_slot_count = aio_slot_count;
      bench.edge_stats = edge_stats;
      bench.model_warnings = warnings;
      bench.dep_resource_names = dep_resource_names;
      bench.dep_arena_peak_bytes = bench.dep_arena.capacity() * sizeof(Dep);
      if (n == 0) {
        bench.dep_offsets.assign(1, 0);
      }
      *out = std::move(bench);
    }
    return digest.h;
  }

  uint64_t StateBytes() const {
    uint64_t bytes =
        meta.thread_index.capacity() * sizeof(uint32_t) +
        (meta.enter.capacity() + meta.ret_time.capacity()) * sizeof(TimeNs);
    bytes += builder->state_bytes();
    if (pruner) {
      bytes += pruner->state_bytes();
    }
    bytes += annotator.resources().capacity() * sizeof(fsmodel::ResourceInfo);
    if (annotator.path_names()) {
      bytes += annotator.path_names()->payload_bytes();
    }
    for (const std::string& s : dep_resource_names) {
      bytes += sizeof(std::string) + s.capacity();
    }
    bytes += (tid_flat.capacity() + thread_ids.capacity()) * sizeof(uint32_t) +
             last_ret_by_thread.capacity() * sizeof(TimeNs) +
             (fd_slots.capacity() + aio_slots.capacity()) * sizeof(int32_t);
    return bytes;
  }
};

CompileStream::CompileStream(const trace::FsSnapshot& snapshot,
                             const CompileStreamOptions& options)
    : impl_(std::make_unique<Impl>(snapshot, options)) {
  // The builder needs the annotator's interner to materialize path-edge
  // attribution names; both live in the Impl, so rewire after construction.
  impl_->builder = std::make_unique<DepBuilder>(
      impl_->annotator.resources(), impl_->annotator.path_names().get(),
      impl_->meta, &impl_->dep_resource_names, &impl_->edge_stats);
}

CompileStream::~CompileStream() = default;

void CompileStream::Push(const trace::TraceEvent& ev) { impl_->Push(ev); }

uint64_t CompileStream::Finish(CompiledBenchmark* bench) {
  return impl_->Finish(bench);
}

uint64_t CompileStream::events_seen() const { return impl_->n; }

uint64_t CompileStream::state_bytes() const { return impl_->StateBytes(); }

uint64_t CompileStream::interner_bytes() const {
  return impl_->annotator.path_names()->payload_bytes();
}

bool CompileStreamFile(const std::string& path,
                       const trace::StreamReaderOptions& reader_options,
                       const CompileStreamOptions& stream_options,
                       CompileStreamFileResult* result,
                       CompiledBenchmark* bench, trace::ParseDiag* diag) {
  ARTC_OBS_SPAN("compiler", "compile_stream_file");
  auto reader = trace::StreamReader::Open(path, reader_options, diag);
  if (reader == nullptr) {
    return false;
  }
  CompileStream stream(reader->snapshot(), stream_options);
  CompileStreamFileResult res;
  std::vector<trace::TraceEvent> window;
  // Gauge cells are additive, so point-in-time sizes export as deltas
  // against the previous window's value.
  int64_t last_state = 0;
  int64_t last_interner = 0;
  while (true) {
    if (!reader->Next(&window, diag)) {
      return false;
    }
    if (window.empty()) {
      break;
    }
    for (const trace::TraceEvent& ev : window) {
      stream.Push(ev);
    }
    ++res.windows;
    res.peak_state_bytes = std::max(res.peak_state_bytes, stream.state_bytes());
    ARTC_OBS_IF_ENABLED {
      const int64_t state = static_cast<int64_t>(stream.state_bytes());
      const int64_t interner = static_cast<int64_t>(stream.interner_bytes());
      ARTC_OBS_GAUGE_ADD("stream.state_bytes", state - last_state);
      ARTC_OBS_GAUGE_ADD("stream.interner_bytes", interner - last_interner);
      last_state = state;
      last_interner = interner;
    }
  }
  res.events = stream.events_seen();
  res.digest = stream.Finish(bench);
  if (result != nullptr) {
    *result = res;
  }
  return true;
}

}  // namespace artc::core

// POSIX replay backend: executes compiled actions as real system calls on
// the host file system, with real std::thread replay threads and striped
// condition variables — this is the paper's actual replayer mechanism. The
// benchmark's absolute paths are translated under a sandbox root ("All that
// is required for basic use is the compiled benchmark and a directory in
// which to run the benchmark", Sec. 4.1).
//
// Used by the examples and semantic-correctness tests; the performance
// experiments run on the simulated backend instead so they are
// deterministic and hardware-independent.
#ifndef SRC_CORE_POSIX_ENV_H_
#define SRC_CORE_POSIX_ENV_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/compiled.h"
#include "src/core/emulation.h"
#include "src/core/replay_engine.h"

namespace artc::core {

class PosixReplayEnv {
 public:
  // root: existing directory the benchmark runs in. Trace paths like
  // "/app/file" are executed as "<root>/app/file".
  explicit PosixReplayEnv(std::string root, EmulationPolicy policy = {});

  // ---- Env concept for Replay<> ----
  TimeNs Now() const;
  void SleepNs(TimeNs d);
  void RunThreads(size_t n, std::function<void(size_t)> body);
  template <typename Pred>
  void WaitOn(uint32_t idx, Pred pred) {
    Stripe& s = stripes_[idx % kStripes];
    std::unique_lock<std::mutex> lk(s.mu);
    s.cv.wait(lk, pred);
  }
  void Notify(uint32_t idx) {
    Stripe& s = stripes_[idx % kStripes];
    {
      std::lock_guard<std::mutex> lk(s.mu);
    }
    s.cv.notify_all();
  }
  int64_t Execute(const trace::TraceEvent& ev, const ExecContext& ctx);

  // Creates the snapshot's tree under the sandbox root (real mkdir/open/
  // truncate/symlink). Special files become symlinks into the host /dev.
  void Initialize(const trace::FsSnapshot& snapshot);

  const std::string& root() const { return root_; }

  // Calls that could not be executed at all on this host (counted, not
  // fatal).
  uint64_t unsupported_calls() const { return unsupported_; }

 private:
  std::string Translate(const std::string& trace_path) const;

  static constexpr size_t kStripes = 256;
  struct Stripe {
    std::mutex mu;
    std::condition_variable cv;
  };

  std::string root_;
  EmulationPolicy policy_;
  std::vector<Stripe> stripes_{kStripes};
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
  std::atomic<uint64_t> unsupported_{0};
  std::atomic<uint64_t> exchange_tmp_counter_{0};
};

}  // namespace artc::core

#endif  // SRC_CORE_POSIX_ENV_H_

#include "src/core/artc.h"

#include <memory>

#include "src/core/sim_env.h"
#include "src/obs/obs.h"
#include "src/sim/simulation.h"

namespace artc::core {

SimReplayResult ReplayCompiledOnSimTarget(const CompiledBenchmark& bench,
                                          const SimTarget& target,
                                          trace::FsSnapshot* final_state) {
  if (target.obs) {
    obs::Enable();
  }
  sim::Simulation sim(target.seed, target.sim_backend);
  std::unique_ptr<sim::SchedulePolicy> policy = sim::MakeSchedulePolicy(target.schedule);
  sim.SetSchedulePolicy(policy.get());
  storage::StorageStack stack(&sim, target.storage);
  vfs::Vfs fs(&sim, &stack, vfs::MakeFsProfile(target.fs_profile),
              vfs::MakePlatformProfile(target.platform));
  SimReplayEnv env(&sim, &fs, target.emulation);

  SimReplayResult result;
  result.edge_stats = bench.edge_stats;
  result.model_warnings = bench.model_warnings;

  // Initialization runs inside the simulation but its (virtual) cost is not
  // charged to the replay: the engine measures from its own start time.
  sim::SimThreadId init = sim.Spawn("init", [&] {
    env.Initialize(bench.snapshot, target.delta_init);
  });
  sim.Spawn("harness", [&] {
    sim.Join(init);
    if (target.drop_caches_after_init) {
      stack.DropCaches();
    }
    result.report = Replay(bench, env, target.replay);
    if (final_state != nullptr) {
      // Pure tree walk: consumes no virtual time, so capture cannot perturb
      // the replay results it rides along with.
      *final_state = fs.CaptureSnapshot();
    }
  });
  result.sim_end_time = sim.Run();
  result.sim_switches = sim.switch_count();
  result.storage = stack.Counters();
  return result;
}

SimReplayResult ReplayCompiledOnSimTarget(const CompiledBenchmark& bench,
                                          const SimTarget& target) {
  return ReplayCompiledOnSimTarget(bench, target, nullptr);
}

MultiReplayResult ReplayConcurrentlyOnSimTarget(
    const std::vector<const CompiledBenchmark*>& benches, const SimTarget& target) {
  if (target.obs) {
    obs::Enable();
  }
  sim::Simulation sim(target.seed, target.sim_backend);
  std::unique_ptr<sim::SchedulePolicy> policy = sim::MakeSchedulePolicy(target.schedule);
  sim.SetSchedulePolicy(policy.get());
  storage::StorageStack stack(&sim, target.storage);
  vfs::Vfs fs(&sim, &stack, vfs::MakeFsProfile(target.fs_profile),
              vfs::MakePlatformProfile(target.platform));
  SimReplayEnv env(&sim, &fs, target.emulation);

  MultiReplayResult result;
  result.reports.resize(benches.size());

  // Overlay every snapshot into one tree before any replay starts.
  trace::FsSnapshot merged;
  for (const CompiledBenchmark* bench : benches) {
    merged = merged.Overlay(bench->snapshot);
  }
  sim::SimThreadId init = sim.Spawn("init", [&] { env.Initialize(merged); });
  TimeNs start = 0;
  TimeNs end = 0;
  sim.Spawn("harness", [&] {
    sim.Join(init);
    if (target.drop_caches_after_init) {
      stack.DropCaches();
    }
    start = sim.Now();
    // Launch one runner per benchmark; each spawns its own replay threads.
    std::vector<sim::SimThreadId> runners;
    runners.reserve(benches.size());
    for (size_t i = 0; i < benches.size(); ++i) {
      runners.push_back(sim.Spawn("replay-bench", [&, i] {
        result.reports[i] = Replay(*benches[i], env, target.replay);
      }));
    }
    for (sim::SimThreadId runner : runners) {
      sim.Join(runner);
    }
    end = sim.Now();
  });
  sim.Run();
  result.wall_time = end - start;
  return result;
}

SuiteReplayResult ReplaySuiteOnSimTarget(
    const std::vector<const CompiledBenchmark*>& benches, const SimTarget& target) {
  if (target.obs) {
    obs::Enable();
  }
  SuiteReplayResult result;
  result.shards = benches.size();
  if (benches.empty()) {
    result.workers = 1;
    return result;
  }

  sim::SimConfig config;
  config.shards = benches.size();
  config.workers = target.jobs;
  // The shards are independent replays by construction — every spawn, join,
  // and storage wait stays inside one shard — so their mutual lookahead is
  // infinite: the whole suite is one window and each worker runs its shards
  // to completion back-to-back with a single barrier. (Shards that *did*
  // exchange joins would instead bound δ by the storage lookahead,
  // storage::MinDeviceLatencyNs(target.storage); see DESIGN.md §5f.)
  config.cross_shard_latency = sim::kInfiniteLookahead;
  sim::Simulation sim(target.seed, target.sim_backend, config);

  // Per-shard worlds. Policies must outlive Run(); stacks/envs are read for
  // counters afterwards.
  std::vector<std::unique_ptr<sim::SchedulePolicy>> policies(benches.size());
  std::vector<std::unique_ptr<storage::StorageStack>> stacks;
  std::vector<std::unique_ptr<vfs::Vfs>> fss;
  std::vector<std::unique_ptr<SimReplayEnv>> envs;
  result.runs.resize(benches.size());

  for (size_t k = 0; k < benches.size(); ++k) {
    sim::ScheduleSpec spec = target.schedule;
    spec.seed = sim::Simulation::ShardSeed(spec.seed, k);
    policies[k] = sim::MakeSchedulePolicy(spec);
    sim.SetShardSchedulePolicy(k, policies[k].get());

    stacks.push_back(std::make_unique<storage::StorageStack>(&sim, target.storage));
    fss.push_back(std::make_unique<vfs::Vfs>(
        &sim, stacks.back().get(), vfs::MakeFsProfile(target.fs_profile),
        vfs::MakePlatformProfile(target.platform)));
    envs.push_back(std::make_unique<SimReplayEnv>(&sim, fss.back().get(),
                                                  target.emulation));

    SimReplayResult& run = result.runs[k];
    run.edge_stats = benches[k]->edge_stats;
    run.model_warnings = benches[k]->model_warnings;
    SimReplayEnv* env = envs.back().get();
    storage::StorageStack* stack = stacks.back().get();
    const CompiledBenchmark* bench = benches[k];
    sim::SimThreadId init = sim.SpawnOnShard(k, "init", [env, bench, &target] {
      env->Initialize(bench->snapshot, target.delta_init);
    });
    sim.SpawnOnShard(k, "harness", [&sim, init, stack, env, bench, &target, &run] {
      sim.Join(init);
      if (target.drop_caches_after_init) {
        stack->DropCaches();
      }
      run.report = Replay(*bench, *env, target.replay);
    });
  }

  result.end_time = sim.Run();
  result.workers = sim.worker_count();
  result.windows = sim.WindowCount();
  result.messages = sim.MessagesDelivered();
  for (size_t k = 0; k < benches.size(); ++k) {
    result.runs[k].sim_end_time = sim.ShardNow(k);
    result.runs[k].sim_switches = sim.ShardSwitchCount(k);
    result.runs[k].storage = stacks[k]->Counters();
  }
  return result;
}

SimReplayResult ReplayOnSimTarget(const trace::Trace& t,
                                  const trace::FsSnapshot& snapshot,
                                  const CompileOptions& options,
                                  const SimTarget& target) {
  CompiledBenchmark bench = Compile(t, snapshot, options);
  return ReplayCompiledOnSimTarget(bench, target);
}

}  // namespace artc::core

#include "src/core/artc.h"

#include "src/core/sim_env.h"
#include "src/obs/obs.h"
#include "src/sim/simulation.h"

namespace artc::core {

SimReplayResult ReplayCompiledOnSimTarget(const CompiledBenchmark& bench,
                                          const SimTarget& target) {
  if (target.obs) {
    obs::Enable();
  }
  sim::Simulation sim(target.seed, target.sim_backend);
  std::unique_ptr<sim::SchedulePolicy> policy = sim::MakeSchedulePolicy(target.schedule);
  sim.SetSchedulePolicy(policy.get());
  storage::StorageStack stack(&sim, target.storage);
  vfs::Vfs fs(&sim, &stack, vfs::MakeFsProfile(target.fs_profile),
              vfs::MakePlatformProfile(target.platform));
  SimReplayEnv env(&sim, &fs, target.emulation);

  SimReplayResult result;
  result.edge_stats = bench.edge_stats;
  result.model_warnings = bench.model_warnings;

  // Initialization runs inside the simulation but its (virtual) cost is not
  // charged to the replay: the engine measures from its own start time.
  sim::SimThreadId init = sim.Spawn("init", [&] {
    env.Initialize(bench.snapshot, target.delta_init);
  });
  sim.Spawn("harness", [&] {
    sim.Join(init);
    if (target.drop_caches_after_init) {
      stack.DropCaches();
    }
    result.report = Replay(bench, env, target.replay);
  });
  result.sim_end_time = sim.Run();
  result.sim_switches = sim.switch_count();
  result.storage = stack.Counters();
  return result;
}

MultiReplayResult ReplayConcurrentlyOnSimTarget(
    const std::vector<const CompiledBenchmark*>& benches, const SimTarget& target) {
  if (target.obs) {
    obs::Enable();
  }
  sim::Simulation sim(target.seed, target.sim_backend);
  std::unique_ptr<sim::SchedulePolicy> policy = sim::MakeSchedulePolicy(target.schedule);
  sim.SetSchedulePolicy(policy.get());
  storage::StorageStack stack(&sim, target.storage);
  vfs::Vfs fs(&sim, &stack, vfs::MakeFsProfile(target.fs_profile),
              vfs::MakePlatformProfile(target.platform));
  SimReplayEnv env(&sim, &fs, target.emulation);

  MultiReplayResult result;
  result.reports.resize(benches.size());

  // Overlay every snapshot into one tree before any replay starts.
  trace::FsSnapshot merged;
  for (const CompiledBenchmark* bench : benches) {
    merged = merged.Overlay(bench->snapshot);
  }
  sim::SimThreadId init = sim.Spawn("init", [&] { env.Initialize(merged); });
  TimeNs start = 0;
  TimeNs end = 0;
  sim.Spawn("harness", [&] {
    sim.Join(init);
    if (target.drop_caches_after_init) {
      stack.DropCaches();
    }
    start = sim.Now();
    // Launch one runner per benchmark; each spawns its own replay threads.
    std::vector<sim::SimThreadId> runners;
    runners.reserve(benches.size());
    for (size_t i = 0; i < benches.size(); ++i) {
      runners.push_back(sim.Spawn("replay-bench", [&, i] {
        result.reports[i] = Replay(*benches[i], env, target.replay);
      }));
    }
    for (sim::SimThreadId runner : runners) {
      sim.Join(runner);
    }
    end = sim.Now();
  });
  sim.Run();
  result.wall_time = end - start;
  return result;
}

SimReplayResult ReplayOnSimTarget(const trace::Trace& t,
                                  const trace::FsSnapshot& snapshot,
                                  const CompileOptions& options,
                                  const SimTarget& target) {
  CompiledBenchmark bench = Compile(t, snapshot, options);
  return ReplayCompiledOnSimTarget(bench, target);
}

}  // namespace artc::core

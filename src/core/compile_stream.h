// Windowed streaming compilation: annotate + compile a trace one event at
// a time without ever materializing the whole trace, its annotation, or
// (optionally) the compiled benchmark.
//
// The batch pipeline holds the full trace (~200 B/event), the full touch
// annotation, and the full dep arena in memory at once. CompileStream
// reorders the same work into a single forward pass — annotate this event,
// assign its remap slots, emit its dependency edges, refine its predelay,
// prune — so peak memory is the live resource tables plus a ~20-byte
// per-event sidecar (thread index + timestamps, consulted when later edges
// reference the event) plus whatever window the caller feeds from. Output
// is bit-identical to the batch compiler: every per-event step consumes
// only data about earlier events, which is exactly what the sidecar keeps
// (see dep_builder.h for the shared machinery and the pruning-safety
// argument).
//
// Two consumption modes:
//  * materialize=true: Finish() fills a CompiledBenchmark equal to
//    Compile()'s (the differential tests rely on this). Peak memory is then
//    O(trace) again — the point is validation, not economy.
//  * materialize=false: nothing per-event is retained beyond the sidecar;
//    Finish() returns only the digest. This is the multi-GB path.
//
// Either way Finish() returns a canonical FNV-1a digest over the compiled
// stream (events, actions, pruned dep edges, thread/slot tables, edge
// stats). DigestBenchmark() computes the identical digest from a
// materialized CompiledBenchmark, so "stream output == batch output" is one
// integer comparison. The digest deliberately excludes
// dep_arena_peak_bytes, the one field that legitimately differs between the
// two pipelines.
//
// ARTC method only: temporal-method emission needs the completed slot
// wiring of the *whole* trace (a second pass), which contradicts streaming.
#ifndef SRC_CORE_COMPILE_STREAM_H_
#define SRC_CORE_COMPILE_STREAM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/compiled.h"
#include "src/core/compiler.h"
#include "src/fsmodel/resource_model.h"
#include "src/trace/event.h"
#include "src/trace/snapshot.h"
#include "src/trace/stream_reader.h"

namespace artc::core {

struct CompileStreamOptions {
  // method must stay kArtc; prune_redundant_deps and modes are honored.
  CompileOptions compile;
  // Keep the full CompiledBenchmark (events, actions, dep arena) for
  // Finish(). Costs O(trace) memory — for tests and small traces.
  bool materialize = false;
};

class CompileStream {
 public:
  explicit CompileStream(const trace::FsSnapshot& snapshot,
                         const CompileStreamOptions& options = {});
  ~CompileStream();
  CompileStream(const CompileStream&) = delete;
  CompileStream& operator=(const CompileStream&) = delete;

  // Feeds the next event. Events MUST arrive in trace (issue) order;
  // TraceEvent::index must be dense from 0 (StreamReader guarantees both).
  void Push(const trace::TraceEvent& ev);

  // Seals the stream and returns the canonical digest. If materialize was
  // set and bench != nullptr, *bench receives the full benchmark. Must be
  // called exactly once; the stream must not be used afterwards.
  uint64_t Finish(CompiledBenchmark* bench);

  uint64_t events_seen() const;
  // The streaming state actually resident right now (sidecar + resource
  // tables + pruner clocks; excludes a materialized benchmark). The RSS
  // acceptance test asserts this stays far below the batch footprint.
  uint64_t state_bytes() const;
  // Payload bytes held by the path-name interner — the one component of
  // state_bytes that grows with path diversity rather than event count.
  uint64_t interner_bytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// The same canonical digest, computed from a materialized benchmark.
uint64_t DigestBenchmark(const CompiledBenchmark& bench);

struct CompileStreamFileResult {
  uint64_t digest = 0;
  uint64_t events = 0;
  uint64_t peak_state_bytes = 0;  // max CompileStream::state_bytes() seen
  uint64_t windows = 0;
};

// Drives a StreamReader (text or ARTCT, sniffed) through a CompileStream in
// bounded windows. Returns false with *diag set on open/parse failure.
// bench may be null when stream_options.materialize is false.
bool CompileStreamFile(const std::string& path,
                       const trace::StreamReaderOptions& reader_options,
                       const CompileStreamOptions& stream_options,
                       CompileStreamFileResult* result,
                       CompiledBenchmark* bench, trace::ParseDiag* diag);

}  // namespace artc::core

#endif  // SRC_CORE_COMPILE_STREAM_H_

#include "src/trace/strace_parser.h"

#include <cstdlib>
#include <fstream>
#include <vector>

#include "src/obs/obs.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace artc::trace {
namespace {

// A parsed strace argument: a quoted string, a bare token (number, flag
// expression, symbol), or a braced/bracketed blob we don't interpret.
struct Arg {
  std::string text;
  bool quoted = false;
};

class LineScanner {
 public:
  explicit LineScanner(std::string_view s) : s_(s) {}

  void SkipSpace() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) {
      pos_++;
    }
  }
  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() == c) {
      pos_++;
      return true;
    }
    return false;
  }
  std::string_view TakeUntil(char c) {
    size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != c) {
      pos_++;
    }
    return s_.substr(start, pos_ - start);
  }
  std::string_view TakeWhileToken() {
    size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ' && s_[pos_] != '(' && s_[pos_] != '\t') {
      pos_++;
    }
    return s_.substr(start, pos_ - start);
  }
  std::string_view Rest() const { return s_.substr(pos_); }
  size_t pos() const { return pos_; }
  void set_pos(size_t p) { pos_ = p; }

  // Parses one argument of a call, stopping at ',' or ')' at depth 0.
  bool ParseArg(Arg* out) {
    SkipSpace();
    out->text.clear();
    out->quoted = false;
    if (Consume('"')) {
      out->quoted = true;
      while (pos_ < s_.size() && s_[pos_] != '"') {
        char c = s_[pos_++];
        if (c == '\\' && pos_ < s_.size()) {
          char e = s_[pos_++];
          switch (e) {
            case 'n':
              out->text.push_back('\n');
              break;
            case 't':
              out->text.push_back('\t');
              break;
            default:
              out->text.push_back(e);
          }
        } else {
          out->text.push_back(c);
        }
      }
      if (!Consume('"')) {
        return false;
      }
      // strace may append "..." after truncated strings.
      while (Consume('.')) {
      }
      return true;
    }
    int depth = 0;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (depth == 0 && (c == ',' || c == ')')) {
        break;
      }
      if (c == '{' || c == '[' || c == '(') {
        depth++;
      }
      if (c == '}' || c == ']' || c == ')') {
        depth--;
      }
      out->text.push_back(c);
      pos_++;
    }
    // Trim trailing spaces.
    while (!out->text.empty() && out->text.back() == ' ') {
      out->text.pop_back();
    }
    return true;
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

bool ParseNumber(std::string_view s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  std::string tmp(s);
  char* end = nullptr;
  errno = 0;
  long long v = strtoll(tmp.c_str(), &end, 0);
  if (errno != 0 || end == tmp.c_str()) {
    return false;
  }
  *out = v;
  return true;
}

// Base-10 parse for timestamp fractions: "000012" must read as 12, not be
// misinterpreted as octal by base-0 strtoll.
bool ParseDecimal(std::string_view s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  std::string tmp(s);
  char* end = nullptr;
  errno = 0;
  long long v = strtoll(tmp.c_str(), &end, 10);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) {
    return false;
  }
  *out = v;
  return true;
}

uint32_t ParseOpenFlags(std::string_view expr) {
  uint32_t flags = 0;
  bool wronly = false;
  bool rdwr = false;
  for (std::string_view f : SplitString(expr, '|')) {
    if (f == "O_RDONLY") {
      // read access set below
    } else if (f == "O_WRONLY") {
      wronly = true;
    } else if (f == "O_RDWR") {
      rdwr = true;
    } else if (f == "O_CREAT") {
      flags |= kOpenCreate;
    } else if (f == "O_EXCL") {
      flags |= kOpenExcl;
    } else if (f == "O_TRUNC") {
      flags |= kOpenTrunc;
    } else if (f == "O_APPEND") {
      flags |= kOpenAppend;
    } else if (f == "O_DIRECTORY") {
      flags |= kOpenDirectory;
    } else if (f == "O_NOFOLLOW") {
      flags |= kOpenNoFollow;
    }
    // O_CLOEXEC, O_NONBLOCK, etc. carry no replay meaning.
  }
  if (rdwr) {
    flags |= kOpenRead | kOpenWrite;
  } else if (wronly) {
    flags |= kOpenWrite;
  } else {
    flags |= kOpenRead;
  }
  return flags;
}

int PortableErrnoFromName(std::string_view name) {
  struct Pair {
    std::string_view n;
    int v;
  };
  static constexpr Pair kMap[] = {
      {"EPERM", kEPERM},       {"ENOENT", kENOENT},       {"EBADF", kEBADF},
      {"EACCES", kEACCES},     {"EEXIST", kEEXIST},       {"EXDEV", kEXDEV},
      {"ENOTDIR", kENOTDIR},   {"EISDIR", kEISDIR},       {"EINVAL", kEINVAL},
      {"ENOSPC", kENOSPC},     {"EROFS", kEROFS},         {"ERANGE", kERANGE},
      {"ENOTEMPTY", kENOTEMPTY}, {"ELOOP", kELOOP},       {"ENODATA", kENODATA},
      {"ENOATTR", kENOATTR},   {"ENOTSUP", kENOTSUP},     {"EOPNOTSUPP", kENOTSUP},
  };
  for (const Pair& p : kMap) {
    if (p.n == name) {
      return p.v;
    }
  }
  return kEINVAL;  // conservative default for unmapped errnos
}

int32_t FdArg(const std::vector<Arg>& args, size_t i) {
  if (i >= args.size()) {
    return -1;
  }
  int64_t v = -1;
  std::string_view text = args[i].text;
  // strace -y decorates fds as "3</path>"; take the leading integer.
  size_t lt = text.find('<');
  if (lt != std::string_view::npos) {
    text = text.substr(0, lt);
  }
  if (!ParseNumber(text, &v)) {
    return -1;
  }
  return static_cast<int32_t>(v);
}

}  // namespace

bool ParseStraceLine(std::string_view line, TraceEvent* out, std::string* error) {
  LineScanner sc(line);
  sc.SkipSpace();
  if (sc.AtEnd() || sc.Peek() == '#') {
    *error = "";
    return false;
  }

  auto fail = [&](const char* msg) {
    *error = StrFormat("%s: %.120s", msg, std::string(line).c_str());
    return false;
  };

  // Optional pid column.
  size_t mark = sc.pos();
  std::string_view first = sc.TakeWhileToken();
  int64_t pid = 0;
  int64_t ts_int = 0;
  TimeNs enter = 0;
  if (first.find('.') == std::string_view::npos && ParseNumber(first, &pid)) {
    sc.SkipSpace();
  } else {
    pid = 0;
    sc.set_pos(mark);
  }
  // Timestamp (epoch seconds with fraction) — required.
  std::string_view ts = sc.TakeWhileToken();
  size_t dot = ts.find('.');
  if (dot == std::string_view::npos) {
    return fail("missing -ttt timestamp");
  }
  int64_t frac = 0;
  if (!ParseDecimal(ts.substr(0, dot), &ts_int) ||
      !ParseDecimal(ts.substr(dot + 1), &frac)) {
    return fail("bad timestamp");
  }
  // Fractional digits to nanoseconds.
  size_t frac_digits = ts.size() - dot - 1;
  int64_t frac_ns = frac;
  for (size_t i = frac_digits; i < 9; ++i) {
    frac_ns *= 10;
  }
  enter = ts_int * kNsPerSec + frac_ns;

  sc.SkipSpace();
  // Resumption / signal / exit lines are skipped, as are interrupted calls
  // ("<unfinished ...>"); strace emits a "resumed" line for those later.
  if (sc.Peek() == '<' || sc.Peek() == '-' || sc.Peek() == '+' ||
      sc.Rest().find("<unfinished") != std::string_view::npos) {
    *error = "";
    return false;
  }
  std::string_view call_name = sc.TakeWhileToken();
  // Strip strace's 64-suffixes and _nocancel variants.
  std::string canonical(call_name);
  if (EndsWith(canonical, "64")) {
    canonical.resize(canonical.size() - 2);
  }
  constexpr std::string_view kNoCancel = "_nocancel";
  if (EndsWith(canonical, kNoCancel)) {
    canonical.resize(canonical.size() - kNoCancel.size());
  }
  if (canonical == "pread" || canonical == "pwrite") {
    // Linux names them pread64/pwrite64; already normalized above.
  }
  // futex has no 1:1 Sys entry: FUTEX_WAIT maps to a condvar-style wait on
  // the futex word and FUTEX_WAKE to signal/broadcast (resolved after the
  // arguments are parsed, below).
  const bool is_futex = canonical == "futex";
  Sys call = is_futex ? Sys::kCondWait : SysFromName(canonical);
  if (call == Sys::kCount) {
    return fail("unknown call");
  }
  if (!sc.Consume('(')) {
    return fail("expected '('");
  }
  std::vector<Arg> args;
  if (!sc.Consume(')')) {
    while (true) {
      Arg a;
      if (!sc.ParseArg(&a)) {
        return fail("bad argument");
      }
      args.push_back(std::move(a));
      if (sc.Consume(')')) {
        break;
      }
      if (!sc.Consume(',')) {
        return fail("expected ','");
      }
    }
  }
  sc.SkipSpace();
  if (!sc.Consume('=')) {
    // Unfinished call (e.g. "<unfinished ...>"): skip.
    *error = "";
    return false;
  }
  sc.SkipSpace();
  std::string_view rest = sc.Rest();
  // Return value, then optional "ERRNO (text)", then optional "<dur>".
  LineScanner rs(rest);
  std::string_view retv = rs.TakeWhileToken();
  int64_t ret = 0;
  if (retv == "?") {
    *error = "";
    return false;
  }
  if (!ParseNumber(retv, &ret)) {
    return fail("bad return value");
  }
  rs.SkipSpace();
  if (ret < 0) {
    std::string_view err_name = rs.TakeWhileToken();
    if (!err_name.empty() && err_name[0] == 'E') {
      ret = -PortableErrnoFromName(err_name);
    }
  }
  // Duration "<0.000123>" at end of line.
  TimeNs duration = 0;
  size_t lt = rest.rfind('<');
  size_t gt = rest.rfind('>');
  if (lt != std::string_view::npos && gt != std::string_view::npos && gt > lt) {
    std::string_view dur = rest.substr(lt + 1, gt - lt - 1);
    size_t ddot = dur.find('.');
    int64_t secs = 0;
    int64_t dfrac = 0;
    if (ddot != std::string_view::npos && ParseDecimal(dur.substr(0, ddot), &secs) &&
        ParseDecimal(dur.substr(ddot + 1), &dfrac)) {
      int64_t dfrac_ns = dfrac;
      for (size_t i = dur.size() - ddot - 1; i < 9; ++i) {
        dfrac_ns *= 10;
      }
      duration = secs * kNsPerSec + dfrac_ns;
    }
  }

  TraceEvent ev;
  ev.tid = static_cast<uint32_t>(pid);
  ev.call = call;
  ev.enter = enter;
  ev.ret_time = enter + duration;
  ev.ret = ret;

  auto path_arg = [&](size_t i) -> std::string {
    return i < args.size() && args[i].quoted ? args[i].text : std::string();
  };
  auto num_arg = [&](size_t i) -> int64_t {
    int64_t v = 0;
    if (i < args.size()) {
      ParseNumber(args[i].text, &v);
    }
    return v;
  };

  if (is_futex) {
    // futex(addr, op, val, ...). The futex word's address identifies the
    // sync object. WAIT that returned an error (EAGAIN: value changed
    // before sleeping) never blocked, so it carries no ordering and is
    // skipped like any other uninteresting line.
    const std::string op = args.size() > 1 ? args[1].text : std::string();
    if (op.find("FUTEX_WAIT") != std::string::npos) {
      if (ret != 0) {
        *error = "";
        return false;
      }
      ev.call = Sys::kCondWait;
    } else if (op.find("FUTEX_WAKE") != std::string::npos) {
      // val is the max waiters to wake; INT_MAX (or any >1) is a broadcast.
      ev.call = num_arg(2) > 1 ? Sys::kCondBroadcast : Sys::kCondSignal;
      ev.ret = 0;  // waiter count is host-specific, not replayed
    } else {
      *error = "";  // REQUEUE / PI variants: no modelled ordering
      return false;
    }
    ev.sync_id = static_cast<uint64_t>(num_arg(0));
    *out = ev;
    return true;
  }

  switch (call) {
    case Sys::kOpen:
      ev.path = path_arg(0);
      ev.flags = args.size() > 1 ? ParseOpenFlags(args[1].text) : kOpenRead;
      ev.mode = static_cast<uint32_t>(num_arg(2));
      if (ret >= 0) {
        ev.fd = static_cast<int32_t>(ret);
      }
      break;
    case Sys::kOpenAt:
      // args: dirfd, path, flags, mode. Only AT_FDCWD/absolute supported.
      ev.call = Sys::kOpen;
      ev.path = path_arg(1);
      ev.flags = args.size() > 2 ? ParseOpenFlags(args[2].text) : kOpenRead;
      ev.mode = static_cast<uint32_t>(num_arg(3));
      if (ret >= 0) {
        ev.fd = static_cast<int32_t>(ret);
      }
      break;
    case Sys::kCreat:
      ev.path = path_arg(0);
      ev.flags = kOpenWrite | kOpenCreate | kOpenTrunc;
      ev.mode = static_cast<uint32_t>(num_arg(1));
      if (ret >= 0) {
        ev.fd = static_cast<int32_t>(ret);
      }
      break;
    case Sys::kClose:
    case Sys::kFsync:
    case Sys::kFdatasync:
    case Sys::kFstat:
    case Sys::kFstatFs:
    case Sys::kFchmod:
    case Sys::kFchown:
    case Sys::kFutimes:
    case Sys::kFlock:
    case Sys::kFcntl:
    case Sys::kIoctl:
    case Sys::kFchdir:
      ev.fd = FdArg(args, 0);
      break;
    case Sys::kDup:
      ev.fd = FdArg(args, 0);
      if (ret >= 0) {
        ev.fd2 = static_cast<int32_t>(ret);
      }
      break;
    case Sys::kDup2:
      ev.fd = FdArg(args, 0);
      ev.fd2 = FdArg(args, 1);
      break;
    case Sys::kRead:
    case Sys::kWrite:
    case Sys::kReadV:
    case Sys::kWriteV:
    case Sys::kGetDents:
    case Sys::kGetDirEntries:
      ev.fd = FdArg(args, 0);
      ev.size = static_cast<uint64_t>(num_arg(2));
      break;
    case Sys::kPRead:
    case Sys::kPWrite:
    case Sys::kPReadV:
    case Sys::kPWriteV:
      ev.fd = FdArg(args, 0);
      ev.size = static_cast<uint64_t>(num_arg(2));
      ev.offset = num_arg(3);
      break;
    case Sys::kLSeek:
      ev.fd = FdArg(args, 0);
      ev.offset = num_arg(1);
      if (args.size() > 2) {
        if (args[2].text == "SEEK_SET") {
          ev.whence = 0;
        } else if (args[2].text == "SEEK_CUR") {
          ev.whence = 1;
        } else if (args[2].text == "SEEK_END") {
          ev.whence = 2;
        }
      }
      break;
    case Sys::kFtruncate:
      ev.fd = FdArg(args, 0);
      ev.size = static_cast<uint64_t>(num_arg(1));
      break;
    case Sys::kTruncate:
      ev.path = path_arg(0);
      ev.size = static_cast<uint64_t>(num_arg(1));
      break;
    case Sys::kStat:
    case Sys::kLstat:
    case Sys::kAccess:
    case Sys::kStatFs:
    case Sys::kRmdir:
    case Sys::kUnlink:
    case Sys::kReadlink:
    case Sys::kChdir:
    case Sys::kChmod:
    case Sys::kChown:
    case Sys::kLchown:
    case Sys::kUtimes:
    case Sys::kShmUnlink:
      ev.path = path_arg(0);
      break;
    case Sys::kMkdir:
      ev.path = path_arg(0);
      ev.mode = static_cast<uint32_t>(num_arg(1));
      break;
    case Sys::kRename:
    case Sys::kLink:
    case Sys::kSymlink:
    case Sys::kExchangeData:
      ev.path = path_arg(0);
      ev.path2 = path_arg(1);
      break;
    case Sys::kUnlinkAt:
      ev.call = Sys::kUnlink;
      ev.path = path_arg(1);
      break;
    case Sys::kRenameAt:
      ev.call = Sys::kRename;
      ev.path = path_arg(1);
      ev.path2 = path_arg(3);
      break;
    case Sys::kGetXattr:
    case Sys::kLGetXattr:
    case Sys::kSetXattr:
    case Sys::kLSetXattr:
    case Sys::kRemoveXattr:
    case Sys::kLRemoveXattr:
      ev.path = path_arg(0);
      ev.name = path_arg(1);
      if (call == Sys::kSetXattr || call == Sys::kLSetXattr) {
        ev.size = static_cast<uint64_t>(num_arg(3));
      }
      break;
    case Sys::kFGetXattr:
    case Sys::kFSetXattr:
    case Sys::kFRemoveXattr:
    case Sys::kFListXattr:
      ev.fd = FdArg(args, 0);
      ev.name = path_arg(1);
      break;
    case Sys::kListXattr:
    case Sys::kLListXattr:
      ev.path = path_arg(0);
      break;
    case Sys::kShmOpen:
      ev.path = path_arg(0);
      ev.flags = args.size() > 1 ? ParseOpenFlags(args[1].text) : kOpenRead;
      if (ret >= 0) {
        ev.fd = static_cast<int32_t>(ret);
      }
      break;
    case Sys::kFadvise:
    case Sys::kSyncFileRange:
      // (fd, offset, len, advice/flags)
      ev.fd = FdArg(args, 0);
      ev.offset = num_arg(1);
      ev.size = static_cast<uint64_t>(num_arg(2));
      break;
    case Sys::kFallocate:
      // (fd, mode, offset, len)
      ev.fd = FdArg(args, 0);
      ev.offset = num_arg(2);
      ev.size = static_cast<uint64_t>(num_arg(3));
      break;
    case Sys::kMmap:
      ev.fd = FdArg(args, 4);
      ev.size = static_cast<uint64_t>(num_arg(1));
      ev.offset = num_arg(5);
      break;
    case Sys::kMutexLock:
    case Sys::kMutexUnlock:
    case Sys::kBarrierWait:
    case Sys::kCondWait:
    case Sys::kCondSignal:
    case Sys::kCondBroadcast:
    case Sys::kThreadJoin:
      // Synthetic strace-style sync lines: first arg is the object (or
      // joined thread) id.
      ev.sync_id = static_cast<uint64_t>(num_arg(0));
      break;
    case Sys::kBarrierInit:
      ev.sync_id = static_cast<uint64_t>(num_arg(0));
      ev.size = static_cast<uint64_t>(num_arg(1));  // participant count
      break;
    default:
      // Calls with no replay-relevant arguments.
      break;
  }
  *out = ev;
  return true;
}

StraceParseResult ParseStrace(std::istream& in) {
  ARTC_OBS_SPAN("compiler", "parse");
  StraceParseResult result;
  std::string line;
  size_t lineno = 0;
  uint64_t offset = 0;
  while (std::getline(in, line)) {
    lineno++;
    const uint64_t line_offset = offset;
    offset += line.size() + 1;
    TraceEvent ev;
    std::string error;
    if (ParseStraceLine(line, &ev, &error)) {
      ev.index = result.trace.events.size();
      result.trace.events.push_back(std::move(ev));
    } else if (!error.empty()) {
      result.skipped_lines++;
      if (result.first_error.empty()) {
        result.first_error = error;
        result.first_error_line = lineno;
        result.first_error_offset = line_offset;
      }
    }
  }
  return result;
}

StraceParseResult ParseStraceFile(const std::string& path) {
  std::ifstream in(path);
  ARTC_CHECK_MSG(in.good(), "cannot open strace file %s", path.c_str());
  return ParseStrace(in);
}

bool ParseStraceFile(const std::string& path, StraceParseResult* out,
                     ParseDiag* diag) {
  std::ifstream in(path);
  if (!in.good()) {
    diag->file = path;
    diag->message = "cannot open strace file";
    return false;
  }
  *out = ParseStrace(in);
  if (!out->first_error.empty()) {
    // Non-fatal, but surface where the first skip happened for callers that
    // want to report it.
    diag->file = path;
    diag->line = out->first_error_line;
    diag->byte_offset = out->first_error_offset;
    diag->message = out->first_error;
  }
  return true;
}

}  // namespace artc::trace

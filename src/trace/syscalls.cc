#include "src/trace/syscalls.h"

#include <array>
#include <string>
#include <unordered_map>

#include "src/util/check.h"

namespace artc::trace {
namespace {

constexpr std::array<SysInfo, kSysCount> BuildTable() {
  std::array<SysInfo, kSysCount> t{};
  auto set = [&t](Sys s, std::string_view name, SysCategory c, bool osx = false) {
    t[static_cast<size_t>(s)] = SysInfo{s, name, c, osx};
  };
  set(Sys::kOpen, "open", SysCategory::kOpen);
  set(Sys::kOpenAt, "openat", SysCategory::kOpen);
  set(Sys::kCreat, "creat", SysCategory::kOpen);
  set(Sys::kClose, "close", SysCategory::kClose);
  set(Sys::kDup, "dup", SysCategory::kOpen);
  set(Sys::kDup2, "dup2", SysCategory::kOpen);
  set(Sys::kRead, "read", SysCategory::kRead);
  set(Sys::kReadV, "readv", SysCategory::kRead);
  set(Sys::kPRead, "pread", SysCategory::kRead);
  set(Sys::kPReadV, "preadv", SysCategory::kRead);
  set(Sys::kWrite, "write", SysCategory::kWrite);
  set(Sys::kWriteV, "writev", SysCategory::kWrite);
  set(Sys::kPWrite, "pwrite", SysCategory::kWrite);
  set(Sys::kPWriteV, "pwritev", SysCategory::kWrite);
  set(Sys::kLSeek, "lseek", SysCategory::kOther);
  set(Sys::kSendFile, "sendfile", SysCategory::kRead);
  set(Sys::kCopyFileRange, "copy_file_range", SysCategory::kWrite);
  set(Sys::kMmap, "mmap", SysCategory::kRead);
  set(Sys::kMunmap, "munmap", SysCategory::kOther);
  set(Sys::kMsync, "msync", SysCategory::kFsync);
  set(Sys::kFsync, "fsync", SysCategory::kFsync);
  set(Sys::kFdatasync, "fdatasync", SysCategory::kFsync);
  set(Sys::kSync, "sync", SysCategory::kFsync);
  set(Sys::kSyncFileRange, "sync_file_range", SysCategory::kFsync);
  set(Sys::kStat, "stat", SysCategory::kStatFamily);
  set(Sys::kLstat, "lstat", SysCategory::kStatFamily);
  set(Sys::kFstat, "fstat", SysCategory::kStatFamily);
  set(Sys::kFstatAt, "fstatat", SysCategory::kStatFamily);
  set(Sys::kAccess, "access", SysCategory::kStatFamily);
  set(Sys::kFaccessAt, "faccessat", SysCategory::kStatFamily);
  set(Sys::kStatFs, "statfs", SysCategory::kStatFamily);
  set(Sys::kFstatFs, "fstatfs", SysCategory::kStatFamily);
  set(Sys::kChmod, "chmod", SysCategory::kNamespaceMeta);
  set(Sys::kFchmod, "fchmod", SysCategory::kNamespaceMeta);
  set(Sys::kChown, "chown", SysCategory::kNamespaceMeta);
  set(Sys::kFchown, "fchown", SysCategory::kNamespaceMeta);
  set(Sys::kLchown, "lchown", SysCategory::kNamespaceMeta);
  set(Sys::kUtimes, "utimes", SysCategory::kNamespaceMeta);
  set(Sys::kFutimes, "futimes", SysCategory::kNamespaceMeta);
  set(Sys::kTruncate, "truncate", SysCategory::kWrite);
  set(Sys::kFtruncate, "ftruncate", SysCategory::kWrite);
  set(Sys::kFcntl, "fcntl", SysCategory::kOther);
  set(Sys::kFlock, "flock", SysCategory::kOther);
  set(Sys::kIoctl, "ioctl", SysCategory::kOther);
  set(Sys::kMknod, "mknod", SysCategory::kNamespaceMeta);
  set(Sys::kUmask, "umask", SysCategory::kOther);
  set(Sys::kMkdir, "mkdir", SysCategory::kNamespaceMeta);
  set(Sys::kMkdirAt, "mkdirat", SysCategory::kNamespaceMeta);
  set(Sys::kRmdir, "rmdir", SysCategory::kNamespaceMeta);
  set(Sys::kUnlink, "unlink", SysCategory::kNamespaceMeta);
  set(Sys::kUnlinkAt, "unlinkat", SysCategory::kNamespaceMeta);
  set(Sys::kRename, "rename", SysCategory::kNamespaceMeta);
  set(Sys::kRenameAt, "renameat", SysCategory::kNamespaceMeta);
  set(Sys::kLink, "link", SysCategory::kNamespaceMeta);
  set(Sys::kLinkAt, "linkat", SysCategory::kNamespaceMeta);
  set(Sys::kSymlink, "symlink", SysCategory::kNamespaceMeta);
  set(Sys::kSymlinkAt, "symlinkat", SysCategory::kNamespaceMeta);
  set(Sys::kReadlink, "readlink", SysCategory::kStatFamily);
  set(Sys::kReadlinkAt, "readlinkat", SysCategory::kStatFamily);
  set(Sys::kChdir, "chdir", SysCategory::kOther);
  set(Sys::kFchdir, "fchdir", SysCategory::kOther);
  set(Sys::kGetCwd, "getcwd", SysCategory::kOther);
  set(Sys::kGetDirEntries, "getdirentries", SysCategory::kDirectory);
  set(Sys::kGetDents, "getdents", SysCategory::kDirectory);
  set(Sys::kGetXattr, "getxattr", SysCategory::kXattr);
  set(Sys::kLGetXattr, "lgetxattr", SysCategory::kXattr);
  set(Sys::kFGetXattr, "fgetxattr", SysCategory::kXattr);
  set(Sys::kSetXattr, "setxattr", SysCategory::kXattr);
  set(Sys::kLSetXattr, "lsetxattr", SysCategory::kXattr);
  set(Sys::kFSetXattr, "fsetxattr", SysCategory::kXattr);
  set(Sys::kListXattr, "listxattr", SysCategory::kXattr);
  set(Sys::kLListXattr, "llistxattr", SysCategory::kXattr);
  set(Sys::kFListXattr, "flistxattr", SysCategory::kXattr);
  set(Sys::kRemoveXattr, "removexattr", SysCategory::kXattr);
  set(Sys::kLRemoveXattr, "lremovexattr", SysCategory::kXattr);
  set(Sys::kFRemoveXattr, "fremovexattr", SysCategory::kXattr);
  set(Sys::kFadvise, "posix_fadvise", SysCategory::kHint);
  set(Sys::kFallocate, "fallocate", SysCategory::kHint);
  set(Sys::kMadvise, "madvise", SysCategory::kHint);
  set(Sys::kReadahead, "readahead", SysCategory::kHint);
  set(Sys::kAioRead, "aio_read", SysCategory::kAio);
  set(Sys::kAioWrite, "aio_write", SysCategory::kAio);
  set(Sys::kAioError, "aio_error", SysCategory::kAio);
  set(Sys::kAioReturn, "aio_return", SysCategory::kAio);
  set(Sys::kAioSuspend, "aio_suspend", SysCategory::kAio);
  set(Sys::kAioCancel, "aio_cancel", SysCategory::kAio);
  set(Sys::kLioListio, "lio_listio", SysCategory::kAio);
  set(Sys::kShmOpen, "shm_open", SysCategory::kOpen);
  set(Sys::kShmUnlink, "shm_unlink", SysCategory::kNamespaceMeta);
  set(Sys::kGetAttrList, "getattrlist", SysCategory::kStatFamily, true);
  set(Sys::kSetAttrList, "setattrlist", SysCategory::kNamespaceMeta, true);
  set(Sys::kGetDirEntriesAttr, "getdirentriesattr", SysCategory::kDirectory, true);
  set(Sys::kExchangeData, "exchangedata", SysCategory::kNamespaceMeta, true);
  set(Sys::kSearchFs, "searchfs", SysCategory::kDirectory, true);
  set(Sys::kGetXattrOsx, "getxattr_osx", SysCategory::kXattr, true);
  set(Sys::kFGetXattrOsx, "fgetxattr_osx", SysCategory::kXattr, true);
  set(Sys::kSetXattrOsx, "setxattr_osx", SysCategory::kXattr, true);
  set(Sys::kFSetXattrOsx, "fsetxattr_osx", SysCategory::kXattr, true);
  set(Sys::kListXattrOsx, "listxattr_osx", SysCategory::kXattr, true);
  set(Sys::kRemoveXattrOsx, "removexattr_osx", SysCategory::kXattr, true);
  set(Sys::kFcntlFullFsync, "fcntl_fullfsync", SysCategory::kFsync, true);
  set(Sys::kFcntlRdAdvise, "fcntl_rdadvise", SysCategory::kHint, true);
  set(Sys::kFcntlPreallocate, "fcntl_preallocate", SysCategory::kHint, true);
  set(Sys::kFcntlNoCache, "fcntl_nocache", SysCategory::kHint, true);
  set(Sys::kFsCtl, "fsctl", SysCategory::kOther, true);
  set(Sys::kOsxUndoc1, "osx_undoc1", SysCategory::kStatFamily, true);
  set(Sys::kOsxUndoc2, "osx_undoc2", SysCategory::kStatFamily, true);
  set(Sys::kOsxUndoc3, "osx_undoc3", SysCategory::kStatFamily, true);
  set(Sys::kMutexLock, "mutex_lock", SysCategory::kSync);
  set(Sys::kMutexUnlock, "mutex_unlock", SysCategory::kSync);
  set(Sys::kBarrierInit, "barrier_init", SysCategory::kSync);
  set(Sys::kBarrierWait, "barrier_wait", SysCategory::kSync);
  set(Sys::kCondWait, "cond_wait", SysCategory::kSync);
  set(Sys::kCondSignal, "cond_signal", SysCategory::kSync);
  set(Sys::kCondBroadcast, "cond_broadcast", SysCategory::kSync);
  set(Sys::kThreadJoin, "thread_join", SysCategory::kSync);
  return t;
}

const std::array<SysInfo, kSysCount>& Table() {
  static const std::array<SysInfo, kSysCount> kTable = BuildTable();
  return kTable;
}

}  // namespace

const SysInfo& GetSysInfo(Sys sys) {
  ARTC_CHECK(sys < Sys::kCount);
  const SysInfo& info = Table()[static_cast<size_t>(sys)];
  ARTC_CHECK_MSG(!info.name.empty(), "missing SysInfo entry %u",
                 static_cast<unsigned>(sys));
  return info;
}

Sys SysFromName(std::string_view name) {
  static const auto* kByName = [] {
    auto* m = new std::unordered_map<std::string, Sys>();
    for (const SysInfo& info : Table()) {
      if (!info.name.empty()) {
        (*m)[std::string(info.name)] = info.sys;
      }
    }
    return m;
  }();
  auto it = kByName->find(std::string(name));
  return it == kByName->end() ? Sys::kCount : it->second;
}

std::string_view SysName(Sys sys) { return GetSysInfo(sys).name; }

std::string_view CategoryName(SysCategory c) {
  switch (c) {
    case SysCategory::kOpen:
      return "open";
    case SysCategory::kClose:
      return "close";
    case SysCategory::kRead:
      return "read";
    case SysCategory::kWrite:
      return "write";
    case SysCategory::kFsync:
      return "fsync";
    case SysCategory::kStatFamily:
      return "stat";
    case SysCategory::kDirectory:
      return "dir";
    case SysCategory::kXattr:
      return "xattr";
    case SysCategory::kNamespaceMeta:
      return "meta";
    case SysCategory::kHint:
      return "hint";
    case SysCategory::kAio:
      return "aio";
    case SysCategory::kSync:
      return "sync";
    case SysCategory::kOther:
      return "other";
  }
  return "other";
}

}  // namespace artc::trace

// ARTCT: the native *binary* trace format, built for multi-GB traces that
// the text format cannot ingest at speed (the text parser tokenizes and
// re-validates every field of every line; ARTCT readers memcpy fixed-width
// records and look paths up in a shared string table).
//
// File layout (all integers little-endian, the only byte order the
// toolchain targets):
//
//   [ArtctHeader: 64 bytes]
//   [event records: event_count * sizeof(BinaryEvent), in trace order]
//   [chunk index: chunk_count * sizeof(ArtctChunk)]
//   [string table: u32 count, (count+1) u32 offsets, concatenated bytes]
//   [snapshot: snapshot_bytes of the text snapshot format]
//
// Records are fixed-width PODs, so a reader can seek to event i without
// scanning, and an mmap'ed file can be decoded chunk-by-chunk on worker
// threads with no coordination. The chunk index carries a CRC-32 per chunk
// (and the header carries its own), so corruption is caught at the chunk
// that holds it, not as a mystery downstream. Paths/names are interned:
// each event stores u32 string-table ids; id 0 is always the empty string.
// The snapshot rides along in its existing text form — it is tiny next to
// the events, and reusing the text codec keeps one source of truth.
//
// Versioning: writers emit kArtctVersion; readers accept the current
// version plus v1 (pre-sync records without the sync_id field, decoded with
// sync_id = 0) and reject anything else loudly. The magic distinguishes
// ARTCT from text traces so tools can sniff (`SniffArtctFile`) and route.
#ifndef SRC_TRACE_BINARY_TRACE_H_
#define SRC_TRACE_BINARY_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/trace/event.h"
#include "src/trace/snapshot.h"
#include "src/trace/trace_io.h"
#include "src/util/interner.h"

namespace artc::trace {

inline constexpr char kArtctMagic[6] = {'A', 'R', 'T', 'C', 'T', '\0'};
inline constexpr uint16_t kArtctVersion = 2;
inline constexpr uint16_t kArtctVersionV1 = 1;  // oldest readable version

// Events per chunk. 64Ki records is ~5.5 MB of event payload: large enough
// that per-chunk overhead (CRC, index entry, task dispatch) vanishes, small
// enough that a parallel decode has plenty of chunks to balance across
// workers and a windowed reader's resident set stays modest.
inline constexpr uint32_t kArtctDefaultChunkEvents = 64 * 1024;

struct ArtctHeader {
  char magic[6];
  uint16_t version;
  uint64_t event_count;
  uint32_t chunk_count;
  uint32_t chunk_events;     // events per chunk (last chunk may be short)
  uint64_t chunk_index_off;  // absolute file offset of the chunk index
  uint64_t strtab_off;       // absolute file offset of the string table
  uint64_t snapshot_off;     // absolute file offset of the snapshot text
  uint64_t strtab_bytes;     // total string-table section size
  uint32_t snapshot_bytes;
  uint32_t header_crc;       // CRC-32 of the 60 bytes preceding this field
};
static_assert(sizeof(ArtctHeader) == 64, "header must stay 64 bytes");

// One trace event, fixed width. TraceEvent::index is implicit (records are
// dense and in trace order); strings are string-table ids.
struct BinaryEvent {
  int64_t enter;
  int64_t ret_time;
  int64_t ret;
  int64_t offset;
  uint64_t size;
  uint64_t aio_id;
  uint64_t sync_id;  // v2: sync-object identity (0 for non-sync calls)
  uint32_t tid;
  uint32_t path_id;
  uint32_t path2_id;
  uint32_t name_id;
  int32_t fd;
  int32_t fd2;
  uint32_t flags;
  uint32_t mode;
  int32_t whence;
  uint16_t call;
  uint16_t pad;
};
static_assert(sizeof(BinaryEvent) == 96, "record must stay fixed-width");

// The v1 record layout (no sync_id), kept so v1 files stay readable.
struct BinaryEventV1 {
  int64_t enter;
  int64_t ret_time;
  int64_t ret;
  int64_t offset;
  uint64_t size;
  uint64_t aio_id;
  uint32_t tid;
  uint32_t path_id;
  uint32_t path2_id;
  uint32_t name_id;
  int32_t fd;
  int32_t fd2;
  uint32_t flags;
  uint32_t mode;
  int32_t whence;
  uint16_t call;
  uint16_t pad;
};
static_assert(sizeof(BinaryEventV1) == 88, "v1 record layout is frozen");

struct ArtctChunk {
  uint64_t file_off;     // absolute offset of the chunk's first record
  uint64_t first_event;  // trace index of that record
  uint32_t count;        // records in this chunk
  uint32_t crc;          // CRC-32 over the chunk's record bytes
};
static_assert(sizeof(ArtctChunk) == 24, "chunk index entry must stay fixed");

// Streams a trace out to an ARTCT file without materializing it: a
// generator producing hundreds of millions of events holds one chunk
// buffer, the string table, and the chunk index. Events are written in
// Add() order; Finish() appends the index/strings/snapshot and patches the
// header. On any I/O failure the writer goes into an error state and the
// failure surfaces from Finish().
class ArtctWriter {
 public:
  ArtctWriter(const std::string& path, const FsSnapshot& snapshot,
              uint32_t chunk_events = kArtctDefaultChunkEvents);
  ~ArtctWriter();
  ArtctWriter(const ArtctWriter&) = delete;
  ArtctWriter& operator=(const ArtctWriter&) = delete;

  void Add(const TraceEvent& ev);

  // Flushes everything and closes the file. Returns false (with *error set)
  // on any failure since construction. Must be called exactly once.
  bool Finish(std::string* error);

  uint64_t events_written() const { return event_count_; }

 private:
  bool FlushChunk();

  std::string path_;
  FILE* file_ = nullptr;
  uint32_t chunk_events_;
  std::vector<BinaryEvent> chunk_;     // current chunk's records
  std::vector<ArtctChunk> index_;
  util::StringInterner strings_;       // "" pre-interned as id 0
  util::LocalBatch string_cache_{&strings_};  // lock-free repeat-path hits
  uint64_t event_count_ = 0;
  std::string snapshot_text_;
  std::string error_;
  bool finished_ = false;
};

// Read-only view over an mmap'ed ARTCT file. Open() validates the header
// CRC/version and parses the (small) snapshot and string-table index;
// DecodeChunk() verifies the chunk CRC and materializes TraceEvents.
// DecodeChunk and StringAt are const and touch only immutable mapped bytes,
// so chunks can be decoded concurrently from ThreadPool workers.
class ArtctReader {
 public:
  static std::unique_ptr<ArtctReader> Open(const std::string& path,
                                           std::string* error);
  ~ArtctReader();
  ArtctReader(const ArtctReader&) = delete;
  ArtctReader& operator=(const ArtctReader&) = delete;

  uint64_t event_count() const { return header_.event_count; }
  uint32_t chunk_count() const { return header_.chunk_count; }
  uint32_t chunk_events() const { return header_.chunk_events; }
  uint16_t version() const { return header_.version; }
  // On-disk record width for this file's version (v1 predates sync_id).
  size_t record_bytes() const {
    return header_.version == kArtctVersionV1 ? sizeof(BinaryEventV1)
                                              : sizeof(BinaryEvent);
  }
  const ArtctChunk& chunk(uint32_t i) const { return index_[i]; }
  const FsSnapshot& snapshot() const { return snapshot_; }

  // Decodes chunk `i`'s records into *out (appending), assigning dense
  // TraceEvent::index values from the chunk's first_event. Returns false
  // with *error set on CRC mismatch or an out-of-range string id.
  bool DecodeChunk(uint32_t i, std::vector<TraceEvent>* out,
                   std::string* error) const;

  // Same, but into a caller-sized slice of chunk(i).count events — the
  // parallel reader points workers at disjoint slices of one output vector
  // so chunks stitch in place with zero copies.
  bool DecodeChunkInto(uint32_t i, TraceEvent* dst, std::string* error) const;

  // Best-effort: drops the record pages of chunks [first, first+count) from
  // the resident set (madvise; clean read-only file pages re-fault on the
  // next touch). The windowed reader calls this after consuming a window so
  // a multi-GB mapping never accumulates in RSS.
  void ReleaseChunkPages(uint32_t first, uint32_t count) const;

  std::string_view StringAt(uint32_t id) const;
  uint32_t string_count() const { return str_count_; }

 private:
  ArtctReader() = default;

  ArtctHeader header_{};
  const unsigned char* map_ = nullptr;  // whole-file mapping
  size_t map_len_ = 0;
  const ArtctChunk* index_ = nullptr;   // points into the mapping
  const uint32_t* str_offsets_ = nullptr;
  const char* str_bytes_ = nullptr;
  uint32_t str_count_ = 0;
  FsSnapshot snapshot_;
};

// True if the file starts with the ARTCT magic (any version).
bool SniffArtctFile(const std::string& path);

// Whole-bundle conveniences for tools and tests. Both return false with
// *error set instead of aborting — a conversion pipeline wants to report
// the bad input and move on.
bool WriteArtctFile(const std::string& path, const Trace& trace,
                    const FsSnapshot& snapshot, std::string* error,
                    uint32_t chunk_events = kArtctDefaultChunkEvents);
bool ReadArtctFile(const std::string& path, TraceBundle* out,
                   std::string* error);

}  // namespace artc::trace

#endif  // SRC_TRACE_BINARY_TRACE_H_

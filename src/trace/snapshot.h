// Initial file-tree snapshot: the parts of the file system a traced program
// accesses, captured on the source machine and restored on the target before
// replay (paper Sec. 4.3.2). File contents are not recorded — only directory
// structure, file sizes, symlink targets, and extended-attribute names.
#ifndef SRC_TRACE_SNAPSHOT_H_
#define SRC_TRACE_SNAPSHOT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace artc::trace {

enum class SnapshotEntryType : uint8_t { kDir, kFile, kSymlink, kSpecial };

struct SnapshotEntry {
  SnapshotEntryType type = SnapshotEntryType::kFile;
  std::string path;               // absolute, normalized
  uint64_t size = 0;              // files: length in bytes
  std::string symlink_target;     // symlinks
  std::vector<std::string> xattr_names;  // xattrs present at snapshot time
  std::string special_kind;       // specials: "random", "urandom", "null"
};

struct FsSnapshot {
  std::vector<SnapshotEntry> entries;  // parents always precede children

  void AddDir(const std::string& path);
  void AddFile(const std::string& path, uint64_t size);
  void AddSymlink(const std::string& path, const std::string& target);
  void AddSpecial(const std::string& path, const std::string& kind);

  const SnapshotEntry* Find(const std::string& path) const;
  // Ensures every ancestor directory of every entry exists in the snapshot,
  // inserting missing ones; then sorts parents-before-children.
  void Canonicalize();

  // Returns a snapshot containing this one plus `other`, for overlaying
  // multiple benchmarks into one tree (paper Sec. 4.3.2, concurrent replay
  // of multiple traces). Conflicting entries keep the first snapshot's
  // definition; sizes take the max.
  FsSnapshot Overlay(const FsSnapshot& other) const;
};

FsSnapshot ReadSnapshot(std::istream& in);
FsSnapshot ReadSnapshotFile(const std::string& path);
void WriteSnapshot(const FsSnapshot& snapshot, std::ostream& out);
void WriteSnapshotFile(const FsSnapshot& snapshot, const std::string& path);

}  // namespace artc::trace

#endif  // SRC_TRACE_SNAPSHOT_H_

// Parser for strace-style trace output, so traces collected with standard
// UNIX tooling can feed the compiler (paper Sec. 4.1: "supporting standard
// tracing tools that are often preinstalled in UNIX environments").
//
// Supported input shape (strace -f -ttt -T):
//
//   <pid> <epoch.seconds> <call>(<args>) = <ret> [ERRNO (text)] <<dur>>
//
// e.g.
//   1234 1700000000.123456 openat(AT_FDCWD, "/a/b", O_RDONLY) = 3 <0.000012>
//   1235 1700000000.123470 read(3, ""..., 4096) = 4096 <0.000034>
//
// The parser is a hand-written recursive-descent replacement for the bison/
// flex grammars in the original ARTC; it covers the call set the rest of the
// pipeline understands and skips unknown calls with a warning counter.
#ifndef SRC_TRACE_STRACE_PARSER_H_
#define SRC_TRACE_STRACE_PARSER_H_

#include <iosfwd>
#include <string>

#include "src/trace/event.h"
#include "src/trace/trace_io.h"

namespace artc::trace {

struct StraceParseResult {
  Trace trace;
  uint64_t skipped_lines = 0;    // unparseable or unknown-call lines
  std::string first_error;       // description of the first skipped line
  size_t first_error_line = 0;   // 1-based line number of that line
  uint64_t first_error_offset = 0;  // file offset of that line's first byte
};

StraceParseResult ParseStrace(std::istream& in);
StraceParseResult ParseStraceFile(const std::string& path);

// Diagnostic-returning variant: a missing/unreadable file fills *diag and
// returns false instead of aborting (per-line trouble still lands in the
// result's skipped_lines/first_error — strace output is noisy by nature,
// so one bad line must never kill a multi-GB ingest).
bool ParseStraceFile(const std::string& path, StraceParseResult* out,
                     ParseDiag* diag);

// Parses a single strace line. Returns true and fills *out on success.
bool ParseStraceLine(std::string_view line, TraceEvent* out, std::string* error);

}  // namespace artc::trace

#endif  // SRC_TRACE_STRACE_PARSER_H_

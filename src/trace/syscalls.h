// Catalog of the system calls ARTC understands (the paper supports "over 80
// different system calls" including 19 OS-X-specific calls handled through
// emulation). Each call carries static metadata used by the compiler (how
// arguments map to resources) and by replay reports (Fig. 10 buckets
// thread-time by call family).
#ifndef SRC_TRACE_SYSCALLS_H_
#define SRC_TRACE_SYSCALLS_H_

#include <cstdint>
#include <string_view>

namespace artc::trace {

enum class Sys : uint16_t {
  // -- open/close family --
  kOpen,
  kOpenAt,
  kCreat,
  kClose,
  kDup,
  kDup2,
  // -- data path --
  kRead,
  kReadV,
  kPRead,
  kPReadV,
  kWrite,
  kWriteV,
  kPWrite,
  kPWriteV,
  kLSeek,
  kSendFile,
  kCopyFileRange,
  kMmap,
  kMunmap,
  kMsync,
  // -- durability --
  kFsync,
  kFdatasync,
  kSync,
  kSyncFileRange,
  // -- file metadata --
  kStat,
  kLstat,
  kFstat,
  kFstatAt,
  kAccess,
  kFaccessAt,
  kStatFs,
  kFstatFs,
  kChmod,
  kFchmod,
  kChown,
  kFchown,
  kLchown,
  kUtimes,
  kFutimes,
  kTruncate,
  kFtruncate,
  kFcntl,
  kFlock,
  kIoctl,
  kMknod,
  kUmask,
  // -- namespace --
  kMkdir,
  kMkdirAt,
  kRmdir,
  kUnlink,
  kUnlinkAt,
  kRename,
  kRenameAt,
  kLink,
  kLinkAt,
  kSymlink,
  kSymlinkAt,
  kReadlink,
  kReadlinkAt,
  kChdir,
  kFchdir,
  kGetCwd,
  kGetDirEntries,
  kGetDents,
  // -- extended attributes (Linux-style) --
  kGetXattr,
  kLGetXattr,
  kFGetXattr,
  kSetXattr,
  kLSetXattr,
  kFSetXattr,
  kListXattr,
  kLListXattr,
  kFListXattr,
  kRemoveXattr,
  kLRemoveXattr,
  kFRemoveXattr,
  // -- hints --
  kFadvise,
  kFallocate,
  kMadvise,
  kReadahead,
  // -- asynchronous I/O --
  kAioRead,
  kAioWrite,
  kAioError,
  kAioReturn,
  kAioSuspend,
  kAioCancel,
  kLioListio,
  // -- shared memory objects --
  kShmOpen,
  kShmUnlink,
  // -- OS-X-specific calls (replayed through emulation, Sec. 4.3.4) --
  kGetAttrList,         // metadata-access API
  kSetAttrList,         // metadata-access API
  kGetDirEntriesAttr,   // metadata-access API
  kExchangeData,        // atomic file-content swap
  kSearchFs,            // metadata-access API
  kGetXattrOsx,         // xattr API with extra options
  kFGetXattrOsx,
  kSetXattrOsx,
  kFSetXattrOsx,
  kListXattrOsx,
  kRemoveXattrOsx,
  kFcntlFullFsync,      // F_FULLFSYNC durability fcntl
  kFcntlRdAdvise,       // prefetch hint fcntl
  kFcntlPreallocate,    // preallocation hint fcntl
  kFcntlNoCache,        // cache-bypass hint fcntl
  kFsCtl,               // fs control, metadata-ish
  kOsxUndoc1,           // undocumented metadata-related calls observed in
  kOsxUndoc2,           //   the iBench traces; emulated with small metadata
  kOsxUndoc3,           //   accesses
  // -- synchronization primitives (SynchroTrace-style taxonomy) --
  // Blocking calls are recorded at *grant* time: `enter` is the instant the
  // primitive was granted (lock acquired, condvar wakeup, join target
  // exited), not the instant the thread started waiting, so trace order is
  // consistent with the happens-before order the annotator infers. The one
  // exception is barrier_wait, whose `enter` is the arrival — the arrival
  // order defines the phase's membership and its releasing (pivot) event.
  kMutexLock,
  kMutexUnlock,
  kBarrierInit,         // participant count in `size`
  kBarrierWait,
  kCondWait,
  kCondSignal,
  kCondBroadcast,
  kThreadJoin,          // joined thread id in `sync_id`
  kCount,               // sentinel
};

inline constexpr size_t kSysCount = static_cast<size_t>(Sys::kCount);

// Fig. 10's thread-time categories.
enum class SysCategory : uint8_t {
  kOpen,
  kClose,
  kRead,
  kWrite,
  kFsync,
  kStatFamily,
  kDirectory,
  kXattr,
  kNamespaceMeta,  // rename/link/unlink/mkdir/...
  kHint,
  kAio,
  kSync,  // mutex/barrier/condvar/join
  kOther,
};

struct SysInfo {
  Sys sys;
  std::string_view name;
  SysCategory category;
  bool osx_specific;   // needs emulation off-platform (19 calls)
};

// Static metadata for every call; indexed by Sys value.
const SysInfo& GetSysInfo(Sys sys);

// Reverse lookup by name; returns Sys::kCount if unknown.
Sys SysFromName(std::string_view name);

std::string_view SysName(Sys sys);
std::string_view CategoryName(SysCategory c);

// Portable open(2) flag encoding used in traces (host O_* values differ
// across the platforms ARTC supports, so traces never store raw values).
inline constexpr uint32_t kOpenRead = 1u << 0;
inline constexpr uint32_t kOpenWrite = 1u << 1;
inline constexpr uint32_t kOpenCreate = 1u << 2;
inline constexpr uint32_t kOpenExcl = 1u << 3;
inline constexpr uint32_t kOpenTrunc = 1u << 4;
inline constexpr uint32_t kOpenAppend = 1u << 5;
inline constexpr uint32_t kOpenDirectory = 1u << 6;
inline constexpr uint32_t kOpenNoFollow = 1u << 7;

}  // namespace artc::trace

#endif  // SRC_TRACE_SYSCALLS_H_

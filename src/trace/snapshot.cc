#include "src/trace/snapshot.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace artc::trace {

void FsSnapshot::AddDir(const std::string& path) {
  SnapshotEntry e;
  e.type = SnapshotEntryType::kDir;
  e.path = NormalizePath(path);
  entries.push_back(std::move(e));
}

void FsSnapshot::AddFile(const std::string& path, uint64_t size) {
  SnapshotEntry e;
  e.type = SnapshotEntryType::kFile;
  e.path = NormalizePath(path);
  e.size = size;
  entries.push_back(std::move(e));
}

void FsSnapshot::AddSymlink(const std::string& path, const std::string& target) {
  SnapshotEntry e;
  e.type = SnapshotEntryType::kSymlink;
  e.path = NormalizePath(path);
  e.symlink_target = target;
  entries.push_back(std::move(e));
}

void FsSnapshot::AddSpecial(const std::string& path, const std::string& kind) {
  SnapshotEntry e;
  e.type = SnapshotEntryType::kSpecial;
  e.path = NormalizePath(path);
  e.special_kind = kind;
  entries.push_back(std::move(e));
}

const SnapshotEntry* FsSnapshot::Find(const std::string& path) const {
  std::string norm = NormalizePath(path);
  for (const SnapshotEntry& e : entries) {
    if (e.path == norm) {
      return &e;
    }
  }
  return nullptr;
}

void FsSnapshot::Canonicalize() {
  std::set<std::string> have;
  for (const SnapshotEntry& e : entries) {
    have.insert(e.path);
  }
  std::vector<SnapshotEntry> missing;
  for (const SnapshotEntry& e : entries) {
    std::string_view dir = DirName(e.path);
    while (dir != "/" && have.insert(std::string(dir)).second) {
      SnapshotEntry d;
      d.type = SnapshotEntryType::kDir;
      d.path = std::string(dir);
      missing.push_back(std::move(d));
      dir = DirName(dir);
    }
  }
  entries.insert(entries.end(), missing.begin(), missing.end());
  std::stable_sort(entries.begin(), entries.end(),
                   [](const SnapshotEntry& a, const SnapshotEntry& b) {
                     // Shorter paths (ancestors) first, then lexicographic.
                     size_t da = std::count(a.path.begin(), a.path.end(), '/');
                     size_t db = std::count(b.path.begin(), b.path.end(), '/');
                     if (da != db) {
                       return da < db;
                     }
                     return a.path < b.path;
                   });
  // Drop duplicate paths, keeping the first definition.
  std::set<std::string> seen;
  std::vector<SnapshotEntry> unique;
  unique.reserve(entries.size());
  for (SnapshotEntry& e : entries) {
    if (seen.insert(e.path).second) {
      unique.push_back(std::move(e));
    }
  }
  entries = std::move(unique);
}

FsSnapshot FsSnapshot::Overlay(const FsSnapshot& other) const {
  FsSnapshot merged = *this;
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < merged.entries.size(); ++i) {
    index[merged.entries[i].path] = i;
  }
  for (const SnapshotEntry& e : other.entries) {
    auto it = index.find(e.path);
    if (it == index.end()) {
      merged.entries.push_back(e);
      index[e.path] = merged.entries.size() - 1;
    } else {
      SnapshotEntry& mine = merged.entries[it->second];
      if (mine.type == e.type && e.type == SnapshotEntryType::kFile) {
        mine.size = std::max(mine.size, e.size);
      }
    }
  }
  merged.Canonicalize();
  return merged;
}

FsSnapshot ReadSnapshot(std::istream& in) {
  FsSnapshot snap;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    // Format: <type> <path> [extra]
    //   D /a/b
    //   F /a/b/c 4096 [xattr1,xattr2]
    //   L /a/b/link -> /target
    //   S /dev/random random
    std::istringstream ls(line);
    std::string type;
    std::string path;
    ls >> type >> path;
    ARTC_CHECK_MSG(!path.empty(), "snapshot line %zu: missing path", lineno);
    if (type == "D") {
      snap.AddDir(path);
    } else if (type == "F") {
      uint64_t size = 0;
      ls >> size;
      snap.AddFile(path, size);
      std::string xattrs;
      ls >> xattrs;
      if (!xattrs.empty()) {
        for (std::string_view x : SplitString(xattrs, ',')) {
          if (!x.empty()) {
            snap.entries.back().xattr_names.emplace_back(x);
          }
        }
      }
    } else if (type == "L") {
      std::string arrow;
      std::string target;
      ls >> arrow >> target;
      ARTC_CHECK_MSG(arrow == "->", "snapshot line %zu: expected '->'", lineno);
      snap.AddSymlink(path, target);
    } else if (type == "S") {
      std::string kind;
      ls >> kind;
      snap.AddSpecial(path, kind);
    } else {
      ARTC_CHECK_MSG(false, "snapshot line %zu: unknown type '%s'", lineno, type.c_str());
    }
  }
  snap.Canonicalize();
  return snap;
}

FsSnapshot ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path);
  ARTC_CHECK_MSG(in.good(), "cannot open snapshot file %s", path.c_str());
  return ReadSnapshot(in);
}

void WriteSnapshot(const FsSnapshot& snapshot, std::ostream& out) {
  out << "# artc file-tree snapshot, " << snapshot.entries.size() << " entries\n";
  for (const SnapshotEntry& e : snapshot.entries) {
    switch (e.type) {
      case SnapshotEntryType::kDir:
        out << "D " << e.path << "\n";
        break;
      case SnapshotEntryType::kFile: {
        out << "F " << e.path << " " << e.size;
        if (!e.xattr_names.empty()) {
          out << " ";
          for (size_t i = 0; i < e.xattr_names.size(); ++i) {
            if (i > 0) {
              out << ",";
            }
            out << e.xattr_names[i];
          }
        }
        out << "\n";
        break;
      }
      case SnapshotEntryType::kSymlink:
        out << "L " << e.path << " -> " << e.symlink_target << "\n";
        break;
      case SnapshotEntryType::kSpecial:
        out << "S " << e.path << " " << e.special_kind << "\n";
        break;
    }
  }
}

void WriteSnapshotFile(const FsSnapshot& snapshot, const std::string& path) {
  std::ofstream out(path);
  ARTC_CHECK_MSG(out.good(), "cannot write snapshot file %s", path.c_str());
  WriteSnapshot(snapshot, out);
}

}  // namespace artc::trace

#include "src/trace/event.h"

#include <algorithm>

#include <unordered_set>

#include "src/util/strings.h"

namespace artc::trace {

const char* ErrnoName(int err) {
  switch (err) {
    case 0:
      return "OK";
    case kEPERM:
      return "EPERM";
    case kENOENT:
      return "ENOENT";
    case kEBADF:
      return "EBADF";
    case kEACCES:
      return "EACCES";
    case kEEXIST:
      return "EEXIST";
    case kEXDEV:
      return "EXDEV";
    case kENOTDIR:
      return "ENOTDIR";
    case kEISDIR:
      return "EISDIR";
    case kEINVAL:
      return "EINVAL";
    case kENOSPC:
      return "ENOSPC";
    case kEROFS:
      return "EROFS";
    case kERANGE:
      return "ERANGE";
    case kENOTEMPTY:
      return "ENOTEMPTY";
    case kELOOP:
      return "ELOOP";
    case kENODATA:
      return "ENODATA";
    case kENOTSUP:
      return "ENOTSUP";
    default:
      return "E?";
  }
}

void Trace::SortByEnterTime() {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.enter < b.enter;
                   });
  for (size_t i = 0; i < events.size(); ++i) {
    events[i].index = i;
  }
}

std::vector<uint32_t> Trace::ThreadIds() const {
  std::vector<uint32_t> out;
  std::unordered_set<uint32_t> seen;
  for (const TraceEvent& ev : events) {
    if (seen.insert(ev.tid).second) {
      out.push_back(ev.tid);
    }
  }
  return out;
}

std::string FormatEvent(const TraceEvent& ev) {
  std::string line = StrFormat("%llu %u %lld %lld %s ret=%lld",
                               static_cast<unsigned long long>(ev.index), ev.tid,
                               static_cast<long long>(ev.enter),
                               static_cast<long long>(ev.ret_time),
                               std::string(SysName(ev.call)).c_str(),
                               static_cast<long long>(ev.ret));
  if (!ev.path.empty()) {
    line += StrFormat(" path=\"%s\"", ev.path.c_str());
  }
  if (!ev.path2.empty()) {
    line += StrFormat(" path2=\"%s\"", ev.path2.c_str());
  }
  if (ev.fd >= 0) {
    line += StrFormat(" fd=%d", ev.fd);
  }
  if (ev.fd2 >= 0) {
    line += StrFormat(" fd2=%d", ev.fd2);
  }
  if (ev.offset >= 0) {
    line += StrFormat(" off=%lld", static_cast<long long>(ev.offset));
  }
  if (ev.size != 0) {
    line += StrFormat(" size=%llu", static_cast<unsigned long long>(ev.size));
  }
  if (ev.flags != 0) {
    line += StrFormat(" flags=0x%x", ev.flags);
  }
  if (ev.mode != 0) {
    line += StrFormat(" mode=0%o", ev.mode);
  }
  if (ev.whence != 0) {
    line += StrFormat(" whence=%d", ev.whence);
  }
  if (!ev.name.empty()) {
    line += StrFormat(" name=\"%s\"", ev.name.c_str());
  }
  if (ev.aio_id != 0) {
    line += StrFormat(" aio=%llu", static_cast<unsigned long long>(ev.aio_id));
  }
  if (ev.sync_id != 0) {
    line += StrFormat(" sync=%llu", static_cast<unsigned long long>(ev.sync_id));
  }
  return line;
}

}  // namespace artc::trace

// Chunked, parallel, and windowed trace ingestion — the front door for
// traces too big (or too hot) for the line-at-a-time readers in trace_io.
//
// Two entry points:
//
//  * ParallelReadTraceFile(): whole-file parse on ThreadPool workers. The
//    file is mmap'ed and split into record-aligned chunks — ARTCT files
//    along their built-in chunk index, text files on the newline nearest
//    each chunk-size boundary. Text goes through three phases: a parallel
//    line count per chunk, an exclusive scan sizing each chunk's slice of
//    the single output vector, and a parallel parse directly into those
//    slices — chunks stitch in order with zero copies. Snapshot lines
//    ("#snapshot ...") are collected per chunk and joined in file order,
//    so bundles parse identically to trace_io::ReadTraceBundle.
//
//  * StreamReader: windowed sequential access for out-of-core pipelines.
//    Open() surfaces the snapshot up front (ARTCT keeps it in the footer;
//    text bundles write it before the first event); Next() then fills a
//    caller-owned window of bounded size, so peak memory is O(window), not
//    O(trace). ARTCT windows decode chunk-aligned and can fan decoding out
//    on a pool; text windows parse sequentially.
//
// Both report trouble through trace::ParseDiag instead of aborting, and
// the parallel text path can optionally skip unparseable lines (counting
// them and keeping the first diagnostic) — rejecting one bad record in a
// multi-GB capture must not kill the ingest.
#ifndef SRC_TRACE_STREAM_READER_H_
#define SRC_TRACE_STREAM_READER_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/binary_trace.h"
#include "src/trace/event.h"
#include "src/trace/snapshot.h"
#include "src/trace/trace_io.h"
#include "src/util/thread_pool.h"

namespace artc::trace {

struct ParallelReadOptions {
  // Worker pool to parse on. Null: a private pool of `jobs` workers is
  // created for the call (jobs == 0 picks util::DefaultJobs()).
  util::ThreadPool* pool = nullptr;
  size_t jobs = 0;
  // Text only: skip unparseable lines (counted, first one diagnosed)
  // instead of failing the whole read.
  bool skip_bad_lines = false;
  // Text only: target bytes per chunk before newline alignment. The
  // default keeps every worker busy on the 100MB+ files this path is for
  // while still splitting small fixtures enough to exercise stitching.
  size_t chunk_bytes = 4 << 20;
};

struct ParallelReadResult {
  TraceBundle bundle;
  size_t chunks = 0;          // chunks the file was split into
  bool from_binary = false;   // ARTCT vs text
  uint64_t skipped_lines = 0;  // text + skip_bad_lines only
  ParseDiag first_skip;        // set when skipped_lines > 0
};

// Reads a native-text trace/bundle or an ARTCT file (sniffed by magic).
// Returns false with *diag set on open failure, corrupt ARTCT sections, or
// (unless skip_bad_lines) the first bad text line.
bool ParallelReadTraceFile(const std::string& path,
                           const ParallelReadOptions& options,
                           ParallelReadResult* out, ParseDiag* diag);

struct StreamReaderOptions {
  // Upper bound on events materialized per Next() window. ARTCT rounds up
  // to whole chunks (the CRC/decode unit), so the effective bound is
  // max(window_events, chunk_events).
  uint64_t window_events = 1 << 20;
  // Optional pool for ARTCT window decoding (chunks within a window decode
  // in parallel). Null: decode on the calling thread.
  util::ThreadPool* pool = nullptr;
};

class StreamReader {
 public:
  // Opens a text trace/bundle or ARTCT file (sniffed). Returns null with
  // *diag set on failure. For text bundles the snapshot must precede the
  // first event line, which is where every writer in this codebase puts it.
  static std::unique_ptr<StreamReader> Open(const std::string& path,
                                            const StreamReaderOptions& options,
                                            ParseDiag* diag);
  ~StreamReader();

  const FsSnapshot& snapshot() const { return snapshot_; }
  bool is_binary() const { return reader_ != nullptr; }
  // Total events in the file: exact for ARTCT, 0 (unknown) for text.
  uint64_t event_count_hint() const;

  // Replaces *window with the next batch of events in trace order (dense
  // TraceEvent::index across windows). Returns false on a parse error
  // (*diag set); an empty window on a true return means end of trace.
  bool Next(std::vector<TraceEvent>* window, ParseDiag* diag);

 private:
  StreamReader() = default;

  StreamReaderOptions opts_;
  FsSnapshot snapshot_;

  // Binary mode.
  std::unique_ptr<ArtctReader> reader_;
  uint32_t next_chunk_ = 0;

  // Text mode.
  std::string path_;
  std::ifstream text_in_;
  std::string pending_line_;  // first event line, read during Open()
  bool have_pending_ = false;
  size_t pending_lineno_ = 0;
  uint64_t pending_off_ = 0;
  bool text_done_ = false;
  size_t lineno_ = 0;
  uint64_t byte_off_ = 0;
  uint64_t next_index_ = 0;
};

}  // namespace artc::trace

#endif  // SRC_TRACE_STREAM_READER_H_

// Native text trace format: one event per line, as emitted by FormatEvent():
//
//   <index> <tid> <enter_ns> <ret_ns> <call> ret=<v> [key=value]...
//
// String values are double-quoted with backslash escapes. Lines beginning
// with '#' are comments.
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/trace/event.h"
#include "src/trace/snapshot.h"

namespace artc::trace {

// Where and why a trace failed to parse. Streaming readers chewing through
// multi-GB files return this instead of aborting, so a caller can reject
// one bad record (or one bad file) and keep going; the CLI frontends format
// it into the same fail-fast message the aborting wrappers always printed.
struct ParseDiag {
  std::string file;          // empty when reading an anonymous stream
  size_t line = 0;           // 1-based line number of the offending line
  uint64_t byte_offset = 0;  // file offset of that line's first byte
  std::string message;

  // "<file>:<line> (byte <off>): <message>"; file/offset parts are omitted
  // when unknown.
  std::string Format() const;
};

// Aborting readers: parse errors die with a message pointing at the
// offending line. The right behaviour for build inputs and small fixtures;
// streaming pipelines use the diagnostic-returning variants below.
Trace ReadTrace(std::istream& in);
Trace ReadTraceFile(const std::string& path);

// Diagnostic-returning variants: on any parse (or open) failure, fill
// *diag and return false; *out holds the events parsed before the failure.
bool ReadTrace(std::istream& in, Trace* out, ParseDiag* diag);
bool ReadTraceFile(const std::string& path, Trace* out, ParseDiag* diag);

void WriteTrace(const Trace& trace, std::ostream& out);
void WriteTraceFile(const Trace& trace, const std::string& path);

// Parses one native-format line; returns false for blank/comment lines.
bool ParseEventLine(std::string_view line, TraceEvent* out, std::string* error);

// ---------------------------------------------------------------------------
// Trace bundles: a trace plus the initial file-tree snapshot it replays
// against, in ONE text file. The snapshot rides along as comment lines
// ("#snapshot <snapshot-format-line>") ahead of the trace, so a bundle is
// also a valid plain trace file for every existing reader. Bundles are the
// unit of the checking harness's golden corpus and repro dumps: a single
// file plus a schedule seed reproduces a replay exactly.
// ---------------------------------------------------------------------------

struct TraceBundle {
  Trace trace;
  FsSnapshot snapshot;
};

TraceBundle ReadTraceBundle(std::istream& in);
TraceBundle ReadTraceBundleFile(const std::string& path);
bool ReadTraceBundle(std::istream& in, TraceBundle* out, ParseDiag* diag);
bool ReadTraceBundleFile(const std::string& path, TraceBundle* out,
                         ParseDiag* diag);
void WriteTraceBundle(const TraceBundle& bundle, std::ostream& out);
void WriteTraceBundleFile(const TraceBundle& bundle, const std::string& path);

}  // namespace artc::trace

#endif  // SRC_TRACE_TRACE_IO_H_

// Native text trace format: one event per line, as emitted by FormatEvent():
//
//   <index> <tid> <enter_ns> <ret_ns> <call> ret=<v> [key=value]...
//
// String values are double-quoted with backslash escapes. Lines beginning
// with '#' are comments.
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/trace/event.h"
#include "src/trace/snapshot.h"

namespace artc::trace {

// Parse errors abort with a message pointing at the offending line; traces
// are build inputs, not user data, so fail-fast is the right behaviour.
Trace ReadTrace(std::istream& in);
Trace ReadTraceFile(const std::string& path);

void WriteTrace(const Trace& trace, std::ostream& out);
void WriteTraceFile(const Trace& trace, const std::string& path);

// Parses one native-format line; returns false for blank/comment lines.
bool ParseEventLine(std::string_view line, TraceEvent* out, std::string* error);

// ---------------------------------------------------------------------------
// Trace bundles: a trace plus the initial file-tree snapshot it replays
// against, in ONE text file. The snapshot rides along as comment lines
// ("#snapshot <snapshot-format-line>") ahead of the trace, so a bundle is
// also a valid plain trace file for every existing reader. Bundles are the
// unit of the checking harness's golden corpus and repro dumps: a single
// file plus a schedule seed reproduces a replay exactly.
// ---------------------------------------------------------------------------

struct TraceBundle {
  Trace trace;
  FsSnapshot snapshot;
};

TraceBundle ReadTraceBundle(std::istream& in);
TraceBundle ReadTraceBundleFile(const std::string& path);
void WriteTraceBundle(const TraceBundle& bundle, std::ostream& out);
void WriteTraceBundleFile(const TraceBundle& bundle, const std::string& path);

}  // namespace artc::trace

#endif  // SRC_TRACE_TRACE_IO_H_

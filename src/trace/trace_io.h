// Native text trace format: one event per line, as emitted by FormatEvent():
//
//   <index> <tid> <enter_ns> <ret_ns> <call> ret=<v> [key=value]...
//
// String values are double-quoted with backslash escapes. Lines beginning
// with '#' are comments.
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/trace/event.h"

namespace artc::trace {

// Parse errors abort with a message pointing at the offending line; traces
// are build inputs, not user data, so fail-fast is the right behaviour.
Trace ReadTrace(std::istream& in);
Trace ReadTraceFile(const std::string& path);

void WriteTrace(const Trace& trace, std::ostream& out);
void WriteTraceFile(const Trace& trace, const std::string& path);

// Parses one native-format line; returns false for blank/comment lines.
bool ParseEventLine(std::string_view line, TraceEvent* out, std::string* error);

}  // namespace artc::trace

#endif  // SRC_TRACE_TRACE_IO_H_

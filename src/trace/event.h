// Trace model: a trace is a totally-ordered series of actions (Sec. 3.1).
// TraceEvent records exactly the information the ARTC compiler requires for
// each call: entry/return timestamps, issuing thread, call type, parameters,
// and return value (Sec. 4.3.1).
#ifndef SRC_TRACE_EVENT_H_
#define SRC_TRACE_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/syscalls.h"
#include "src/util/time.h"

namespace artc::trace {

// Return value convention: ret >= 0 is the call's success return; ret < 0 is
// -errno. Portable errno values (host values differ across platforms):
inline constexpr int kEPERM = 1;
inline constexpr int kENOENT = 2;
inline constexpr int kEBADF = 9;
inline constexpr int kEACCES = 13;
inline constexpr int kEEXIST = 17;
inline constexpr int kEXDEV = 18;
inline constexpr int kENOTDIR = 20;
inline constexpr int kEISDIR = 21;
inline constexpr int kEINVAL = 22;
inline constexpr int kENOSPC = 28;
inline constexpr int kEROFS = 30;
inline constexpr int kERANGE = 34;
inline constexpr int kENOTEMPTY = 39;
inline constexpr int kELOOP = 40;
inline constexpr int kENODATA = 61;
inline constexpr int kENOATTR = kENODATA;
inline constexpr int kENOTSUP = 95;

const char* ErrnoName(int err);

struct TraceEvent {
  uint64_t index = 0;     // position in the trace (dense, from 0)
  uint32_t tid = 0;       // numeric id of the issuing thread
  Sys call = Sys::kCount;
  TimeNs enter = 0;       // entry timestamp
  TimeNs ret_time = 0;    // return timestamp
  int64_t ret = 0;        // return value or -errno

  // Parameters. Unused fields keep their defaults; which fields are
  // meaningful depends on `call`.
  std::string path;       // primary path argument
  std::string path2;      // second path (rename/link/symlink target)
  int32_t fd = -1;        // primary fd argument
  int32_t fd2 = -1;       // dup2's new fd
  int64_t offset = -1;    // pread/pwrite/lseek offset
  uint64_t size = 0;      // byte count / truncate length
  uint32_t flags = 0;     // portable open flags / call-specific flags
  uint32_t mode = 0;      // creation mode
  int32_t whence = 0;     // lseek whence
  std::string name;       // xattr name
  uint64_t aio_id = 0;    // identity of the aiocb for aio_* calls
  uint64_t sync_id = 0;   // identity of the sync object for sync calls;
                          // for thread_join, the joined thread's id

  TimeNs Duration() const { return ret_time - enter; }
  bool Failed() const { return ret < 0; }
  int Errno() const { return ret < 0 ? static_cast<int>(-ret) : 0; }
};

struct Trace {
  std::vector<TraceEvent> events;
  // Thread ids appearing in the trace, in order of first appearance.
  std::vector<uint32_t> ThreadIds() const;
  size_t size() const { return events.size(); }
  // Re-sorts events by entry timestamp (stable) and reindexes densely.
  // Recorders append an event when its call *returns*, so a freshly captured
  // trace is in completion order; all trace consumers expect issue order.
  void SortByEnterTime();
};

// Renders one event as a single line of the native trace format (also used
// in logs and error messages).
std::string FormatEvent(const TraceEvent& ev);

}  // namespace artc::trace

#endif  // SRC_TRACE_EVENT_H_

#include "src/trace/stream_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/obs/obs.h"
#include "src/util/strings.h"

namespace artc::trace {
namespace {

constexpr std::string_view kSnapshotLinePrefix = "#snapshot ";

// Read-only whole-file mapping (empty files map to nullptr/0).
struct MappedFile {
  const char* data = nullptr;
  size_t size = 0;

  ~MappedFile() {
    if (data != nullptr) {
      munmap(const_cast<char*>(data), size);
    }
  }

  bool Open(const std::string& path, std::string* error) {
    int fd = open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      *error = "cannot open trace file";
      return false;
    }
    struct stat st;
    if (fstat(fd, &st) != 0) {
      close(fd);
      *error = "cannot stat trace file";
      return false;
    }
    size = static_cast<size_t>(st.st_size);
    if (size > 0) {
      void* map = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map == MAP_FAILED) {
        close(fd);
        size = 0;
        *error = "mmap failed";
        return false;
      }
      data = static_cast<const char*>(map);
    }
    close(fd);
    return true;
  }
};

enum class LineClass { kEvent, kComment, kSnapshot };

// Mirrors ParseEventLine's own blank/comment test (trailing trim only) so
// the counting phase and the parsing phase agree on what is an event line.
LineClass Classify(std::string_view raw) {
  if (raw.substr(0, kSnapshotLinePrefix.size()) == kSnapshotLinePrefix) {
    return LineClass::kSnapshot;
  }
  std::string_view line = raw;
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n' ||
                           line.back() == ' ')) {
    line.remove_suffix(1);
  }
  if (line.empty() || line[0] == '#') {
    return LineClass::kComment;
  }
  return LineClass::kEvent;
}

struct TextChunk {
  const char* begin = nullptr;
  const char* end = nullptr;
  uint64_t byte_off = 0;  // file offset of `begin`
  // Filled by the counting phase:
  size_t lines = 0;
  size_t candidates = 0;  // event lines (parse may still reject some)
  std::string snapshot_text;
  // Filled by the scan between phases:
  size_t line_base = 0;
  size_t event_base = 0;
  // Filled by the parsing phase:
  size_t parsed = 0;
  uint64_t skipped = 0;
  bool failed = false;
  ParseDiag diag;  // first skip (skip mode) or the failure
};

// Calls fn(line, offset_in_chunk, line_index_in_chunk) for every line.
template <typename Fn>
void ForEachLine(const TextChunk& c, Fn&& fn) {
  const char* p = c.begin;
  size_t k = 0;
  while (p < c.end) {
    const char* nl = static_cast<const char*>(
        memchr(p, '\n', static_cast<size_t>(c.end - p)));
    const char* stop = nl == nullptr ? c.end : nl;
    fn(std::string_view(p, static_cast<size_t>(stop - p)),
       static_cast<uint64_t>(p - c.begin), k);
    k++;
    p = stop + 1;
  }
}

void CountChunk(TextChunk* c) {
  ForEachLine(*c, [c](std::string_view line, uint64_t, size_t) {
    c->lines++;
    switch (Classify(line)) {
      case LineClass::kEvent:
        c->candidates++;
        break;
      case LineClass::kSnapshot:
        c->snapshot_text.append(line.substr(kSnapshotLinePrefix.size()));
        c->snapshot_text.push_back('\n');
        break;
      case LineClass::kComment:
        break;
    }
  });
}

void ParseChunk(TextChunk* c, const std::string& path, bool skip_bad,
                std::vector<TraceEvent>* out) {
  TraceEvent* dst = out->data() + c->event_base;
  ForEachLine(*c, [&](std::string_view line, uint64_t off, size_t k) {
    if (c->failed || Classify(line) != LineClass::kEvent) {
      return;
    }
    std::string error;
    if (ParseEventLine(line, &dst[c->parsed], &error)) {
      dst[c->parsed].index = c->event_base + c->parsed;
      c->parsed++;
      return;
    }
    if (skip_bad) {
      c->skipped++;
      if (c->skipped == 1) {
        c->diag.file = path;
        c->diag.line = c->line_base + k + 1;
        c->diag.byte_offset = c->byte_off + off;
        c->diag.message = std::move(error);
      }
      return;
    }
    c->failed = true;
    c->diag.file = path;
    c->diag.line = c->line_base + k + 1;
    c->diag.byte_offset = c->byte_off + off;
    c->diag.message = std::move(error);
  });
}

bool ParallelReadArtct(const std::string& path, util::ThreadPool& pool,
                       ParallelReadResult* out, ParseDiag* diag) {
  std::string error;
  std::unique_ptr<ArtctReader> reader = ArtctReader::Open(path, &error);
  if (reader == nullptr) {
    diag->file = path;
    diag->message = std::move(error);
    return false;
  }
  out->from_binary = true;
  out->chunks = reader->chunk_count();
  out->bundle.snapshot = reader->snapshot();
  std::vector<TraceEvent>& events = out->bundle.trace.events;
  events.resize(reader->event_count());
  std::vector<std::string> chunk_errors(reader->chunk_count());
  util::ParallelFor(pool, reader->chunk_count(), [&](size_t i) {
    const uint32_t ci = static_cast<uint32_t>(i);
    reader->DecodeChunkInto(ci, events.data() + reader->chunk(ci).first_event,
                            &chunk_errors[i]);
  });
  for (const std::string& e : chunk_errors) {
    if (!e.empty()) {
      diag->file = path;
      diag->message = e;
      return false;
    }
  }
  return true;
}

}  // namespace

bool ParallelReadTraceFile(const std::string& path,
                           const ParallelReadOptions& options,
                           ParallelReadResult* out, ParseDiag* diag) {
  ARTC_OBS_SPAN("compiler", "parse_parallel");
  util::ThreadPool* pool = options.pool;
  std::unique_ptr<util::ThreadPool> own_pool;
  if (pool == nullptr) {
    own_pool = std::make_unique<util::ThreadPool>(options.jobs);
    pool = own_pool.get();
  }
  if (SniffArtctFile(path)) {
    return ParallelReadArtct(path, *pool, out, diag);
  }

  MappedFile map;
  std::string error;
  if (!map.Open(path, &error)) {
    diag->file = path;
    diag->message = std::move(error);
    return false;
  }
  out->from_binary = false;
  if (map.size == 0) {
    out->chunks = 0;
    return true;
  }

  // Newline-aligned chunk boundaries: each nominal boundary advances to
  // just past the next '\n', so every line belongs to exactly one chunk.
  const size_t target = std::max<size_t>(options.chunk_bytes, 1);
  size_t nchunks = std::min<size_t>((map.size + target - 1) / target, 4096);
  // Small files still split across the pool so fixtures exercise stitching.
  nchunks = std::max<size_t>(
      nchunks,
      std::min<size_t>(pool->worker_count(), (map.size + 4095) / 4096));
  std::vector<TextChunk> chunks;
  chunks.reserve(nchunks);
  const char* base = map.data;
  const char* end = map.data + map.size;
  const char* cursor = base;
  for (size_t i = 0; i < nchunks && cursor < end; ++i) {
    const char* nominal = base + ((i + 1) * map.size) / nchunks;
    const char* stop;
    if (i + 1 == nchunks || nominal >= end) {
      stop = end;
    } else {
      const char* nl = static_cast<const char*>(
          memchr(nominal, '\n', static_cast<size_t>(end - nominal)));
      stop = nl == nullptr ? end : nl + 1;
    }
    if (stop <= cursor) {
      continue;  // boundary landed inside a line already claimed
    }
    TextChunk c;
    c.begin = cursor;
    c.end = stop;
    c.byte_off = static_cast<uint64_t>(cursor - base);
    chunks.push_back(c);
    cursor = stop;
  }
  out->chunks = chunks.size();

  // Phase 1: count lines and event candidates per chunk, in parallel.
  util::ParallelFor(*pool, chunks.size(),
                    [&](size_t i) { CountChunk(&chunks[i]); });

  // Exclusive scan: line numbers for diagnostics, slice bases for output.
  size_t total_lines = 0;
  size_t total_events = 0;
  for (TextChunk& c : chunks) {
    c.line_base = total_lines;
    c.event_base = total_events;
    total_lines += c.lines;
    total_events += c.candidates;
  }

  // Phase 2: parse every chunk straight into its slice of the one output
  // vector — the stitch is the layout, no copies.
  std::vector<TraceEvent>& events = out->bundle.trace.events;
  events.resize(total_events);
  util::ParallelFor(*pool, chunks.size(), [&](size_t i) {
    ParseChunk(&chunks[i], path, options.skip_bad_lines, &events);
  });

  std::string snapshot_text;
  bool have_first_skip = false;
  for (const TextChunk& c : chunks) {
    if (c.failed) {
      *diag = c.diag;
      return false;
    }
    snapshot_text += c.snapshot_text;
    out->skipped_lines += c.skipped;
    if (c.skipped > 0 && !have_first_skip) {
      out->first_skip = c.diag;
      have_first_skip = true;
    }
  }

  // Compact out the holes skipped lines left (none in the common case),
  // keeping TraceEvent::index dense.
  size_t write = 0;
  for (const TextChunk& c : chunks) {
    if (write != c.event_base) {
      for (size_t j = 0; j < c.parsed; ++j) {
        events[write + j] = std::move(events[c.event_base + j]);
        events[write + j].index = write + j;
      }
    }
    write += c.parsed;
  }
  events.resize(write);
  ARTC_OBS_COUNT("parse.chunks", chunks.size());
  ARTC_OBS_COUNT("parse.events", write);
  if (out->skipped_lines > 0) {
    ARTC_OBS_COUNT("parse.skipped_lines", out->skipped_lines);
  }

  std::istringstream snap_in(snapshot_text);
  out->bundle.snapshot = ReadSnapshot(snap_in);
  return true;
}

StreamReader::~StreamReader() = default;

std::unique_ptr<StreamReader> StreamReader::Open(
    const std::string& path, const StreamReaderOptions& options,
    ParseDiag* diag) {
  std::unique_ptr<StreamReader> r(new StreamReader());
  r->opts_ = options;
  r->path_ = path;
  if (SniffArtctFile(path)) {
    std::string error;
    r->reader_ = ArtctReader::Open(path, &error);
    if (r->reader_ == nullptr) {
      diag->file = path;
      diag->message = std::move(error);
      return nullptr;
    }
    r->snapshot_ = r->reader_->snapshot();
    return r;
  }
  r->text_in_.open(path);
  if (!r->text_in_.good()) {
    diag->file = path;
    diag->message = "cannot open trace file";
    return nullptr;
  }
  // The preamble: snapshot and comment lines up to the first event line,
  // which is buffered for the first Next() window.
  std::string snapshot_text;
  std::string line;
  while (std::getline(r->text_in_, line)) {
    r->lineno_++;
    const uint64_t off = r->byte_off_;
    r->byte_off_ += line.size() + 1;
    switch (Classify(line)) {
      case LineClass::kSnapshot:
        snapshot_text.append(line, kSnapshotLinePrefix.size(),
                             line.size() - kSnapshotLinePrefix.size());
        snapshot_text.push_back('\n');
        break;
      case LineClass::kComment:
        break;
      case LineClass::kEvent:
        r->pending_line_ = std::move(line);
        r->have_pending_ = true;
        r->pending_lineno_ = r->lineno_;
        r->pending_off_ = off;
        break;
    }
    if (r->have_pending_) {
      break;
    }
  }
  std::istringstream snap_in(snapshot_text);
  r->snapshot_ = ReadSnapshot(snap_in);
  return r;
}

uint64_t StreamReader::event_count_hint() const {
  return reader_ != nullptr ? reader_->event_count() : 0;
}

bool StreamReader::Next(std::vector<TraceEvent>* window, ParseDiag* diag) {
  window->clear();
  if (reader_ != nullptr) {
    // Chunk-aligned binary window: pick the chunk range, then decode into
    // disjoint slices (on the pool when one was provided).
    const uint32_t first = next_chunk_;
    const uint64_t bound = std::max<uint64_t>(opts_.window_events, 1);
    uint64_t count = 0;
    while (next_chunk_ < reader_->chunk_count() &&
           (count == 0 ||
            count + reader_->chunk(next_chunk_).count <= bound)) {
      count += reader_->chunk(next_chunk_).count;
      next_chunk_++;
    }
    if (count == 0) {
      return true;  // end of trace
    }
    window->resize(count);
    const uint64_t window_base = reader_->chunk(first).first_event;
    const uint32_t nchunks = next_chunk_ - first;
    std::vector<std::string> errors(nchunks);
    auto decode = [&](size_t i) {
      const uint32_t ci = first + static_cast<uint32_t>(i);
      reader_->DecodeChunkInto(
          ci, window->data() + (reader_->chunk(ci).first_event - window_base),
          &errors[i]);
    };
    if (opts_.pool != nullptr && nchunks > 1) {
      util::ParallelFor(*opts_.pool, nchunks, decode);
    } else {
      for (uint32_t i = 0; i < nchunks; ++i) {
        decode(i);
      }
    }
    for (const std::string& e : errors) {
      if (!e.empty()) {
        diag->file = path_;
        diag->message = e;
        return false;
      }
    }
    ARTC_OBS_IF_ENABLED {
      const uint64_t window_bytes =
          static_cast<uint64_t>(count) * sizeof(BinaryEvent);
      ARTC_OBS_OBSERVE("stream.window_bytes", window_bytes);
      ARTC_OBS_OBSERVE("stream.window_events", count);
      ARTC_OBS_COUNT("stream.windows", 1);
      ARTC_OBS_COUNT("stream.events", count);
    }
    // The window owns copies of everything it needs; let the kernel drop
    // the decoded record pages so RSS tracks the window, not the file.
    reader_->ReleaseChunkPages(first, nchunks);
    return true;
  }

  // Text mode: sequential line parse up to the window bound.
  if (text_done_) {
    return true;
  }
  std::string buf;
  while (window->size() < std::max<uint64_t>(opts_.window_events, 1)) {
    std::string_view line;
    size_t cur_lineno;
    uint64_t cur_off;
    if (have_pending_) {
      line = pending_line_;
      cur_lineno = pending_lineno_;
      cur_off = pending_off_;
      have_pending_ = false;
    } else {
      if (!std::getline(text_in_, buf)) {
        text_done_ = true;
        break;
      }
      lineno_++;
      cur_off = byte_off_;
      byte_off_ += buf.size() + 1;
      cur_lineno = lineno_;
      line = buf;
    }
    switch (Classify(line)) {
      case LineClass::kSnapshot:
        // The snapshot was parsed at Open(); entries appearing after events
        // would silently change the tree under the consumer's feet.
        diag->file = path_;
        diag->line = cur_lineno;
        diag->byte_offset = cur_off;
        diag->message = "snapshot line after the first event in streaming mode";
        return false;
      case LineClass::kComment:
        continue;
      case LineClass::kEvent:
        break;
    }
    TraceEvent ev;
    std::string error;
    if (!ParseEventLine(line, &ev, &error)) {
      diag->file = path_;
      diag->line = cur_lineno;
      diag->byte_offset = cur_off;
      diag->message = std::move(error);
      return false;
    }
    ev.index = next_index_++;
    window->push_back(std::move(ev));
  }
  if (!window->empty()) {
    ARTC_OBS_OBSERVE("stream.window_events", window->size());
    ARTC_OBS_COUNT("stream.windows", 1);
    ARTC_OBS_COUNT("stream.events", window->size());
  }
  return true;
}

}  // namespace artc::trace

#include "src/trace/binary_trace.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <type_traits>

#include "src/obs/obs.h"
#include "src/util/crc32.h"
#include "src/util/strings.h"

namespace artc::trace {
namespace {

// The header CRC covers everything before the crc field itself.
uint32_t HeaderCrc(const ArtctHeader& h) {
  return util::Crc32(&h, offsetof(ArtctHeader, header_crc));
}

}  // namespace

ArtctWriter::ArtctWriter(const std::string& path, const FsSnapshot& snapshot,
                         uint32_t chunk_events)
    : path_(path), chunk_events_(chunk_events == 0 ? 1 : chunk_events) {
  strings_.Intern("");  // id 0: the unset path/name
  std::ostringstream snap;
  WriteSnapshot(snapshot, snap);
  snapshot_text_ = snap.str();
  chunk_.reserve(chunk_events_);
  file_ = fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    error_ = StrFormat("cannot create %s", path.c_str());
    return;
  }
  ArtctHeader placeholder{};
  if (fwrite(&placeholder, sizeof(placeholder), 1, file_) != 1) {
    error_ = StrFormat("write failed on %s", path.c_str());
  }
}

ArtctWriter::~ArtctWriter() {
  if (file_ != nullptr) {
    fclose(file_);
  }
}

void ArtctWriter::Add(const TraceEvent& ev) {
  if (!error_.empty() || finished_) {
    return;
  }
  BinaryEvent b{};
  b.enter = ev.enter;
  b.ret_time = ev.ret_time;
  b.ret = ev.ret;
  b.offset = ev.offset;
  b.size = ev.size;
  b.aio_id = ev.aio_id;
  b.sync_id = ev.sync_id;
  b.tid = ev.tid;
  b.path_id = ev.path.empty() ? 0 : string_cache_.Intern(ev.path);
  b.path2_id = ev.path2.empty() ? 0 : string_cache_.Intern(ev.path2);
  b.name_id = ev.name.empty() ? 0 : string_cache_.Intern(ev.name);
  b.fd = ev.fd;
  b.fd2 = ev.fd2;
  b.flags = ev.flags;
  b.mode = ev.mode;
  b.whence = ev.whence;
  b.call = static_cast<uint16_t>(ev.call);
  b.pad = 0;
  chunk_.push_back(b);
  event_count_++;
  if (chunk_.size() >= chunk_events_) {
    FlushChunk();
  }
}

bool ArtctWriter::FlushChunk() {
  if (chunk_.empty() || !error_.empty()) {
    return error_.empty();
  }
  const size_t bytes = chunk_.size() * sizeof(BinaryEvent);
  ArtctChunk entry;
  entry.file_off = static_cast<uint64_t>(ftello(file_));
  entry.first_event = event_count_ - chunk_.size();
  entry.count = static_cast<uint32_t>(chunk_.size());
  entry.crc = util::Crc32(chunk_.data(), bytes);
  if (fwrite(chunk_.data(), 1, bytes, file_) != bytes) {
    error_ = StrFormat("write failed on %s", path_.c_str());
    return false;
  }
  index_.push_back(entry);
  chunk_.clear();
  return true;
}

bool ArtctWriter::Finish(std::string* error) {
  if (finished_) {
    if (error != nullptr) {
      *error = "Finish called twice";
    }
    return false;
  }
  finished_ = true;
  if (error_.empty() && file_ == nullptr) {
    error_ = StrFormat("cannot create %s", path_.c_str());
  }
  if (error_.empty()) {
    FlushChunk();
  }
  ArtctHeader h{};
  if (error_.empty()) {
    std::memcpy(h.magic, kArtctMagic, sizeof(h.magic));
    h.version = kArtctVersion;
    h.event_count = event_count_;
    h.chunk_count = static_cast<uint32_t>(index_.size());
    h.chunk_events = chunk_events_;
    h.chunk_index_off = static_cast<uint64_t>(ftello(file_));
    if (!index_.empty() &&
        fwrite(index_.data(), sizeof(ArtctChunk), index_.size(), file_) !=
            index_.size()) {
      error_ = StrFormat("write failed on %s", path_.c_str());
    }
  }
  if (error_.empty()) {
    // String table: count, count+1 cumulative offsets, concatenated bytes.
    h.strtab_off = static_cast<uint64_t>(ftello(file_));
    const uint32_t count = static_cast<uint32_t>(strings_.size());
    std::vector<uint32_t> offsets(count + 1, 0);
    for (uint32_t i = 0; i < count; ++i) {
      offsets[i + 1] =
          offsets[i] + static_cast<uint32_t>(strings_.View(i).size());
    }
    bool ok = fwrite(&count, sizeof(count), 1, file_) == 1 &&
              fwrite(offsets.data(), sizeof(uint32_t), offsets.size(), file_) ==
                  offsets.size();
    for (uint32_t i = 0; ok && i < count; ++i) {
      std::string_view s = strings_.View(i);
      ok = s.empty() || fwrite(s.data(), 1, s.size(), file_) == s.size();
    }
    if (!ok) {
      error_ = StrFormat("write failed on %s", path_.c_str());
    }
    h.strtab_bytes = static_cast<uint64_t>(ftello(file_)) - h.strtab_off;
  }
  if (error_.empty()) {
    h.snapshot_off = static_cast<uint64_t>(ftello(file_));
    h.snapshot_bytes = static_cast<uint32_t>(snapshot_text_.size());
    if (!snapshot_text_.empty() &&
        fwrite(snapshot_text_.data(), 1, snapshot_text_.size(), file_) !=
            snapshot_text_.size()) {
      error_ = StrFormat("write failed on %s", path_.c_str());
    }
  }
  if (error_.empty()) {
    h.header_crc = HeaderCrc(h);
    if (fseeko(file_, 0, SEEK_SET) != 0 ||
        fwrite(&h, sizeof(h), 1, file_) != 1) {
      error_ = StrFormat("write failed on %s", path_.c_str());
    }
  }
  if (file_ != nullptr) {
    if (fclose(file_) != 0 && error_.empty()) {
      error_ = StrFormat("close failed on %s", path_.c_str());
    }
    file_ = nullptr;
  }
  if (!error_.empty() && error != nullptr) {
    *error = error_;
  }
  return error_.empty();
}

std::unique_ptr<ArtctReader> ArtctReader::Open(const std::string& path,
                                               std::string* error) {
  auto fail = [&](const std::string& msg) -> std::unique_ptr<ArtctReader> {
    if (error != nullptr) {
      *error = StrFormat("%s: %s", path.c_str(), msg.c_str());
    }
    return nullptr;
  };
  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return fail("cannot open");
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    close(fd);
    return fail("cannot stat");
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len < sizeof(ArtctHeader)) {
    close(fd);
    return fail("too small for an ARTCT header");
  }
  void* map = mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return fail("mmap failed");
  }
  std::unique_ptr<ArtctReader> r(new ArtctReader());
  r->map_ = static_cast<const unsigned char*>(map);
  r->map_len_ = len;
  std::memcpy(&r->header_, r->map_, sizeof(ArtctHeader));
  const ArtctHeader& h = r->header_;
  if (std::memcmp(h.magic, kArtctMagic, sizeof(h.magic)) != 0) {
    return fail("not an ARTCT file (bad magic)");
  }
  if (h.version != kArtctVersion && h.version != kArtctVersionV1) {
    return fail(StrFormat("unsupported ARTCT version %u (reader speaks %u-%u)",
                          h.version, kArtctVersionV1, kArtctVersion));
  }
  if (h.header_crc != HeaderCrc(h)) {
    return fail("header CRC mismatch (truncated or corrupt file)");
  }
  const uint64_t events_end =
      sizeof(ArtctHeader) + h.event_count * r->record_bytes();
  const uint64_t index_end =
      h.chunk_index_off + static_cast<uint64_t>(h.chunk_count) * sizeof(ArtctChunk);
  if (events_end > h.chunk_index_off || index_end > h.strtab_off ||
      h.strtab_off + h.strtab_bytes > h.snapshot_off ||
      h.snapshot_off + h.snapshot_bytes > len) {
    return fail("section offsets out of bounds (corrupt header)");
  }
  r->index_ = reinterpret_cast<const ArtctChunk*>(r->map_ + h.chunk_index_off);
  // String table.
  if (h.strtab_bytes < sizeof(uint32_t)) {
    return fail("string table truncated");
  }
  std::memcpy(&r->str_count_, r->map_ + h.strtab_off, sizeof(uint32_t));
  const uint64_t offsets_bytes =
      static_cast<uint64_t>(r->str_count_ + 1) * sizeof(uint32_t);
  if (sizeof(uint32_t) + offsets_bytes > h.strtab_bytes) {
    return fail("string table truncated");
  }
  r->str_offsets_ = reinterpret_cast<const uint32_t*>(r->map_ + h.strtab_off +
                                                      sizeof(uint32_t));
  r->str_bytes_ = reinterpret_cast<const char*>(r->map_ + h.strtab_off +
                                                sizeof(uint32_t) + offsets_bytes);
  const uint64_t blob_bytes = h.strtab_bytes - sizeof(uint32_t) - offsets_bytes;
  if (r->str_count_ > 0 && r->str_offsets_[r->str_count_] > blob_bytes) {
    return fail("string table offsets out of bounds");
  }
  // Validate the chunk index once here so DecodeChunk can trust it.
  uint64_t next_event = 0;
  for (uint32_t i = 0; i < h.chunk_count; ++i) {
    const ArtctChunk& c = r->index_[i];
    const uint64_t chunk_end =
        c.file_off + static_cast<uint64_t>(c.count) * r->record_bytes();
    if (c.file_off < sizeof(ArtctHeader) || chunk_end > h.chunk_index_off ||
        c.first_event != next_event) {
      return fail(StrFormat("chunk %u index entry out of bounds", i));
    }
    next_event += c.count;
  }
  if (next_event != h.event_count) {
    return fail("chunk index does not cover the event records");
  }
  // Snapshot (text codec). Small: parse it eagerly.
  std::istringstream snap_in(std::string(
      reinterpret_cast<const char*>(r->map_ + h.snapshot_off), h.snapshot_bytes));
  r->snapshot_ = ReadSnapshot(snap_in);
  return r;
}

ArtctReader::~ArtctReader() {
  if (map_ != nullptr) {
    munmap(const_cast<unsigned char*>(map_), map_len_);
  }
}

std::string_view ArtctReader::StringAt(uint32_t id) const {
  if (id >= str_count_) {
    return {};
  }
  return std::string_view(str_bytes_ + str_offsets_[id],
                          str_offsets_[id + 1] - str_offsets_[id]);
}

bool ArtctReader::DecodeChunkInto(uint32_t i, TraceEvent* dst,
                                  std::string* error) const {
  if (i >= header_.chunk_count) {
    if (error != nullptr) {
      *error = StrFormat("chunk %u out of range (%u chunks)", i,
                         header_.chunk_count);
    }
    return false;
  }
  const ArtctChunk& c = index_[i];
  const unsigned char* base = map_ + c.file_off;
  const size_t bytes = static_cast<size_t>(c.count) * record_bytes();
  if (util::Crc32(base, bytes) != c.crc) {
    if (error != nullptr) {
      *error = StrFormat(
          "chunk %u CRC mismatch at byte offset %llu (%u records)", i,
          static_cast<unsigned long long>(c.file_off), c.count);
    }
    return false;
  }
  // Both record layouts convert through the same field copy; only the
  // current layout carries sync_id (v1 records decode with sync_id = 0).
  auto convert = [&](const auto& b, uint32_t j) -> bool {
    if (b.call >= static_cast<uint16_t>(Sys::kCount) ||
        b.path_id >= str_count_ || b.path2_id >= str_count_ ||
        b.name_id >= str_count_) {
      if (error != nullptr) {
        *error = StrFormat(
            "chunk %u record %u (event %llu) is corrupt despite a clean CRC",
            i, j, static_cast<unsigned long long>(c.first_event + j));
      }
      return false;
    }
    TraceEvent& ev = dst[j];
    ev.index = c.first_event + j;
    ev.tid = b.tid;
    ev.call = static_cast<Sys>(b.call);
    ev.enter = b.enter;
    ev.ret_time = b.ret_time;
    ev.ret = b.ret;
    ev.path.assign(StringAt(b.path_id));
    ev.path2.assign(StringAt(b.path2_id));
    ev.fd = b.fd;
    ev.fd2 = b.fd2;
    ev.offset = b.offset;
    ev.size = b.size;
    ev.flags = b.flags;
    ev.mode = b.mode;
    ev.whence = b.whence;
    ev.name.assign(StringAt(b.name_id));
    ev.aio_id = b.aio_id;
    if constexpr (std::is_same_v<std::decay_t<decltype(b)>, BinaryEvent>) {
      ev.sync_id = b.sync_id;
    } else {
      ev.sync_id = 0;
    }
    return true;
  };
  if (header_.version == kArtctVersionV1) {
    const BinaryEventV1* recs = reinterpret_cast<const BinaryEventV1*>(base);
    for (uint32_t j = 0; j < c.count; ++j) {
      if (!convert(recs[j], j)) {
        return false;
      }
    }
  } else {
    const BinaryEvent* recs = reinterpret_cast<const BinaryEvent*>(base);
    for (uint32_t j = 0; j < c.count; ++j) {
      if (!convert(recs[j], j)) {
        return false;
      }
    }
  }
  return true;
}

bool ArtctReader::DecodeChunk(uint32_t i, std::vector<TraceEvent>* out,
                              std::string* error) const {
  if (i >= header_.chunk_count) {
    if (error != nullptr) {
      *error = StrFormat("chunk %u out of range (%u chunks)", i,
                         header_.chunk_count);
    }
    return false;
  }
  const size_t base = out->size();
  out->resize(base + index_[i].count);
  if (!DecodeChunkInto(i, out->data() + base, error)) {
    out->resize(base);
    return false;
  }
  return true;
}

void ArtctReader::ReleaseChunkPages(uint32_t first, uint32_t count) const {
#if defined(__unix__) || defined(__APPLE__)
  if (count == 0 || first >= header_.chunk_count) {
    return;
  }
  count = std::min(count, header_.chunk_count - first);
  const ArtctChunk& head = index_[first];
  const ArtctChunk& tail = index_[first + count - 1];
  const uint64_t begin = head.file_off;
  const uint64_t end =
      tail.file_off + static_cast<uint64_t>(tail.count) * record_bytes();
  // Advise whole pages strictly inside [begin, end): neighbours may share
  // the boundary pages with the header/index sections or an unread chunk.
  const uint64_t page = static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
  const uint64_t lo = (begin + page - 1) & ~(page - 1);
  const uint64_t hi = end & ~(page - 1);
  if (hi > lo && hi <= map_len_) {
    madvise(const_cast<unsigned char*>(map_) + lo, hi - lo, MADV_DONTNEED);
    // RSS control visibility: pages handed back to the kernel per window.
    ARTC_OBS_COUNT("stream.madvised_pages", (hi - lo) / page);
  }
#else
  (void)first;
  (void)count;
#endif
}

bool SniffArtctFile(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char magic[6] = {};
  const bool got = fread(magic, 1, sizeof(magic), f) == sizeof(magic);
  fclose(f);
  return got && std::memcmp(magic, kArtctMagic, sizeof(magic)) == 0;
}

bool WriteArtctFile(const std::string& path, const Trace& trace,
                    const FsSnapshot& snapshot, std::string* error,
                    uint32_t chunk_events) {
  ArtctWriter writer(path, snapshot, chunk_events);
  for (const TraceEvent& ev : trace.events) {
    writer.Add(ev);
  }
  return writer.Finish(error);
}

bool ReadArtctFile(const std::string& path, TraceBundle* out,
                   std::string* error) {
  std::unique_ptr<ArtctReader> reader = ArtctReader::Open(path, error);
  if (reader == nullptr) {
    return false;
  }
  out->snapshot = reader->snapshot();
  out->trace.events.clear();
  out->trace.events.reserve(reader->event_count());
  for (uint32_t i = 0; i < reader->chunk_count(); ++i) {
    if (!reader->DecodeChunk(i, &out->trace.events, error)) {
      return false;
    }
  }
  return true;
}

}  // namespace artc::trace

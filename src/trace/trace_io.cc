#include "src/trace/trace_io.h"

#include <fstream>
#include <sstream>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace artc::trace {
namespace {

// Cursor over a line of text.
class Scanner {
 public:
  explicit Scanner(std::string_view s) : s_(s) {}

  void SkipSpace() {
    while (pos_ < s_.size() && s_[pos_] == ' ') {
      pos_++;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos_ >= s_.size();
  }
  // Reads a token up to space or '='.
  std::string_view Token() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ' && s_[pos_] != '=') {
      pos_++;
    }
    return s_.substr(start, pos_ - start);
  }
  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }
  // Reads a value: quoted string or bare token.
  bool Value(std::string* out, std::string* error) {
    if (Consume('"')) {
      out->clear();
      while (pos_ < s_.size() && s_[pos_] != '"') {
        char c = s_[pos_++];
        if (c == '\\' && pos_ < s_.size()) {
          out->push_back(s_[pos_++]);
        } else {
          out->push_back(c);
        }
      }
      if (!Consume('"')) {
        *error = "unterminated string";
        return false;
      }
      return true;
    }
    size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ') {
      pos_++;
    }
    *out = std::string(s_.substr(start, pos_ - start));
    return true;
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

bool ParseI64(std::string_view s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  std::string tmp(s);
  long long v = strtoll(tmp.c_str(), &end, 0);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

bool ParseEventLine(std::string_view line, TraceEvent* out, std::string* error) {
  // Trim trailing whitespace/CR.
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n' || line.back() == ' ')) {
    line.remove_suffix(1);
  }
  if (line.empty() || line[0] == '#') {
    return false;
  }
  Scanner sc(line);
  int64_t v = 0;
  TraceEvent ev;

  auto fail = [&](const char* msg) {
    *error = StrFormat("%s in line: %.*s", msg, static_cast<int>(line.size()), line.data());
    return false;
  };

  if (!ParseI64(sc.Token(), &v)) {
    return fail("bad index");
  }
  ev.index = static_cast<uint64_t>(v);
  if (!ParseI64(sc.Token(), &v)) {
    return fail("bad tid");
  }
  ev.tid = static_cast<uint32_t>(v);
  if (!ParseI64(sc.Token(), &v)) {
    return fail("bad enter time");
  }
  ev.enter = v;
  if (!ParseI64(sc.Token(), &v)) {
    return fail("bad return time");
  }
  ev.ret_time = v;
  std::string_view call_name = sc.Token();
  ev.call = SysFromName(call_name);
  if (ev.call == Sys::kCount) {
    return fail("unknown syscall");
  }

  bool have_ret = false;
  while (!sc.AtEnd()) {
    std::string_view key = sc.Token();
    if (!sc.Consume('=')) {
      return fail("expected '='");
    }
    std::string value;
    if (!sc.Value(&value, error)) {
      return false;
    }
    int64_t num = 0;
    bool is_num = ParseI64(value, &num);
    if (key == "ret") {
      if (!is_num) {
        return fail("bad ret");
      }
      ev.ret = num;
      have_ret = true;
    } else if (key == "path") {
      ev.path = value;
    } else if (key == "path2") {
      ev.path2 = value;
    } else if (key == "fd") {
      ev.fd = static_cast<int32_t>(num);
    } else if (key == "fd2") {
      ev.fd2 = static_cast<int32_t>(num);
    } else if (key == "off") {
      ev.offset = num;
    } else if (key == "size") {
      ev.size = static_cast<uint64_t>(num);
    } else if (key == "flags") {
      ev.flags = static_cast<uint32_t>(num);
    } else if (key == "mode") {
      ev.mode = static_cast<uint32_t>(num);
    } else if (key == "whence") {
      ev.whence = static_cast<int32_t>(num);
    } else if (key == "name") {
      ev.name = value;
    } else if (key == "aio") {
      ev.aio_id = static_cast<uint64_t>(num);
    } else if (key == "sync") {
      ev.sync_id = static_cast<uint64_t>(num);
    } else {
      // Unknown keys are skipped for forward compatibility.
    }
  }
  if (!have_ret) {
    return fail("missing ret=");
  }
  *out = ev;
  return true;
}

std::string ParseDiag::Format() const {
  std::string out;
  if (!file.empty()) {
    out = file;
  }
  if (line > 0) {
    out += StrFormat("%s%zu (byte %llu)", out.empty() ? "line " : ":", line,
                     static_cast<unsigned long long>(byte_offset));
  }
  if (!out.empty()) {
    out += ": ";
  }
  out += message;
  return out;
}

bool ReadTrace(std::istream& in, Trace* out, ParseDiag* diag) {
  std::string line;
  size_t lineno = 0;
  uint64_t offset = 0;
  while (std::getline(in, line)) {
    lineno++;
    const uint64_t line_offset = offset;
    offset += line.size() + 1;  // the newline getline consumed
    TraceEvent ev;
    std::string error;
    if (ParseEventLine(line, &ev, &error)) {
      ev.index = out->events.size();  // reindex densely
      out->events.push_back(std::move(ev));
    } else if (!error.empty()) {
      diag->line = lineno;
      diag->byte_offset = line_offset;
      diag->message = std::move(error);
      return false;
    }
  }
  return true;
}

bool ReadTraceFile(const std::string& path, Trace* out, ParseDiag* diag) {
  std::ifstream in(path);
  if (!in.good()) {
    diag->file = path;
    diag->message = "cannot open trace file";
    return false;
  }
  if (!ReadTrace(in, out, diag)) {
    diag->file = path;
    return false;
  }
  return true;
}

Trace ReadTrace(std::istream& in) {
  Trace trace;
  ParseDiag diag;
  ARTC_CHECK_MSG(ReadTrace(in, &trace, &diag),
                 "trace parse error at line %zu: %s", diag.line,
                 diag.message.c_str());
  return trace;
}

Trace ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  ARTC_CHECK_MSG(in.good(), "cannot open trace file %s", path.c_str());
  return ReadTrace(in);
}

void WriteTrace(const Trace& trace, std::ostream& out) {
  out << "# artc native trace, " << trace.events.size() << " events\n";
  for (const TraceEvent& ev : trace.events) {
    out << FormatEvent(ev) << "\n";
  }
}

void WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  ARTC_CHECK_MSG(out.good(), "cannot write trace file %s", path.c_str());
  WriteTrace(trace, out);
}

namespace {
constexpr std::string_view kSnapshotLinePrefix = "#snapshot ";
}  // namespace

bool ReadTraceBundle(std::istream& in, TraceBundle* out, ParseDiag* diag) {
  std::string snapshot_text;
  std::string line;
  size_t lineno = 0;
  uint64_t offset = 0;
  while (std::getline(in, line)) {
    lineno++;
    const uint64_t line_offset = offset;
    offset += line.size() + 1;
    if (std::string_view(line).substr(0, kSnapshotLinePrefix.size()) ==
        kSnapshotLinePrefix) {
      snapshot_text.append(line, kSnapshotLinePrefix.size(),
                           line.size() - kSnapshotLinePrefix.size());
      snapshot_text.push_back('\n');
      continue;
    }
    TraceEvent ev;
    std::string error;
    if (ParseEventLine(line, &ev, &error)) {
      ev.index = out->trace.events.size();
      out->trace.events.push_back(std::move(ev));
    } else if (!error.empty()) {
      diag->line = lineno;
      diag->byte_offset = line_offset;
      diag->message = std::move(error);
      return false;
    }
  }
  std::istringstream snap_in(snapshot_text);
  out->snapshot = ReadSnapshot(snap_in);
  return true;
}

bool ReadTraceBundleFile(const std::string& path, TraceBundle* out,
                         ParseDiag* diag) {
  std::ifstream in(path);
  if (!in.good()) {
    diag->file = path;
    diag->message = "cannot open bundle file";
    return false;
  }
  if (!ReadTraceBundle(in, out, diag)) {
    diag->file = path;
    return false;
  }
  return true;
}

TraceBundle ReadTraceBundle(std::istream& in) {
  TraceBundle bundle;
  ParseDiag diag;
  ARTC_CHECK_MSG(ReadTraceBundle(in, &bundle, &diag),
                 "bundle parse error at line %zu: %s", diag.line,
                 diag.message.c_str());
  return bundle;
}

TraceBundle ReadTraceBundleFile(const std::string& path) {
  std::ifstream in(path);
  ARTC_CHECK_MSG(in.good(), "cannot open bundle file %s", path.c_str());
  return ReadTraceBundle(in);
}

void WriteTraceBundle(const TraceBundle& bundle, std::ostream& out) {
  out << "# artc trace bundle: snapshot lines are prefixed with '"
      << kSnapshotLinePrefix << "'\n";
  std::ostringstream snap_out;
  WriteSnapshot(bundle.snapshot, snap_out);
  std::istringstream snap_in(snap_out.str());
  std::string line;
  while (std::getline(snap_in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;  // the snapshot writer's own comments need no round trip
    }
    out << kSnapshotLinePrefix << line << "\n";
  }
  WriteTrace(bundle.trace, out);
}

void WriteTraceBundleFile(const TraceBundle& bundle, const std::string& path) {
  std::ofstream out(path);
  ARTC_CHECK_MSG(out.good(), "cannot write bundle file %s", path.c_str());
  WriteTraceBundle(bundle, out);
}

}  // namespace artc::trace
